package engine

import (
	"context"
	"fmt"
	"math"
	"sort"

	"comparenb/internal/table"
)

// Cube is a partial aggregate: the result of γ over a set of categorical
// attributes, carrying count/sum/min/max for every measure so that any Agg
// (and any roll-up to a subset of the attributes — the trick behind
// Algorithm 2's group-by merging) can be answered from it without touching
// the base relation again.
//
// Group keys live in one flat backing array (stride = number of attributes)
// instead of a slice per group: building a cube allocates O(1) key slices
// regardless of the group count, and GroupKey is a re-slice, not a lookup.
type Cube struct {
	rel    *table.Relation
	attrs  []int // sorted categorical attribute indexes
	stride int   // == len(attrs)

	keyData []int32 // keyData[g*stride+k] = code of attrs[k] in group g
	counts  []int64
	sums    [][]float64 // sums[m][g]
	mins    [][]float64
	maxs    [][]float64

	// SourceRows is θ_q of §4.2: the number of tuples aggregated.
	SourceRows int
}

// Attrs returns a copy of the (sorted) categorical attribute indexes the
// cube groups by. Hot paths inside the module use NumAttrs/AttrAt instead,
// which do not clone.
func (c *Cube) Attrs() []int { return append([]int(nil), c.attrs...) }

// NumAttrs returns the number of group-by attributes.
func (c *Cube) NumAttrs() int { return len(c.attrs) }

// AttrAt returns the k-th (sorted) group-by attribute index without
// cloning the attribute set.
func (c *Cube) AttrAt(k int) int { return c.attrs[k] }

// NumGroups returns γ_q: the number of groups.
func (c *Cube) NumGroups() int { return len(c.counts) }

// Relation returns the relation the cube was built from.
func (c *Cube) Relation() *table.Relation { return c.rel }

// GroupKey returns the attribute codes identifying group g, aligned with
// Attrs(). The slice is owned by the cube (it aliases the flat backing
// array and is capped, so appends cannot clobber a neighbouring group).
func (c *Cube) GroupKey(g int) []int32 {
	lo, hi := g*c.stride, (g+1)*c.stride
	return c.keyData[lo:hi:hi]
}

// Count returns the tuple count of group g.
func (c *Cube) Count(g int) int64 { return c.counts[g] }

// Value returns agg(measure m) for group g. Avg of an empty group and
// Min/Max of an all-NaN group are NaN.
func (c *Cube) Value(g, m int, agg Agg) float64 {
	switch agg {
	case Sum:
		return c.sums[m][g]
	case Avg:
		if c.counts[g] == 0 {
			return math.NaN()
		}
		return c.sums[m][g] / float64(c.counts[g])
	case Min:
		return c.mins[m][g]
	case Max:
		return c.maxs[m][g]
	case Count:
		return float64(c.counts[g])
	default:
		//nolint:nopanic // exhaustive switch over the Agg enum; a new value is a programming error every test hits immediately
		panic(fmt.Sprintf("engine: bad agg %d", int(agg)))
	}
}

// MemoryFootprint estimates the in-memory size of the cube in bytes. This
// is the weight used by Algorithm 2's weighted set cover and the unit the
// CubeCache budget is expressed in.
func (c *Cube) MemoryFootprint() int64 {
	g := int64(c.NumGroups())
	perGroup := int64(len(c.attrs))*4 + 8 + int64(c.rel.NumMeasures())*3*8
	return g * perGroup
}

// buildShardRows is the fixed shard width of the sharded cube build. It
// depends only on the relation size — never on the thread count — so the
// per-shard partial sums, and therefore the merged totals, are bit-identical
// no matter how many workers execute the shards (see docs/PERFORMANCE.md
// for the determinism argument).
const buildShardRows = 16384

// maxDenseCells bounds the composite-code space for which the group
// indexer uses a dense table (one int32 per possible key) instead of a
// hash map. 1<<20 cells is a 4 MiB scratch table.
const maxDenseCells = 1 << 20

// groupIndexer assigns dense group ids to composite keys in first-come
// order. Three regimes, fastest first: a dense table over the mixed-radix
// code space when it is small, a hash map over the mixed-radix code when it
// fits uint64, and a string-keyed map over the raw code bytes otherwise.
type groupIndexer struct {
	stride int
	radix  []uint64
	dense  []int32 // code → group+1 (0 = unassigned) when the space is small
	m      map[uint64]int32
	ms     map[string]int32
	buf    []byte
	n      int32
}

func newGroupIndexer(rel *table.Relation, sorted []int, sizeHint int) *groupIndexer {
	ix := &groupIndexer{stride: len(sorted)}
	radix, ok := mixedRadix(rel, sorted)
	if !ok {
		ix.ms = make(map[string]int32, sizeHint)
		ix.buf = make([]byte, 4*len(sorted))
		return ix
	}
	ix.radix = radix
	cells := uint64(1)
	for _, a := range sorted {
		d := uint64(rel.DomSize(a))
		if d == 0 {
			d = 1
		}
		cells *= d
	}
	if cells <= maxDenseCells {
		ix.dense = make([]int32, cells)
		return ix
	}
	ix.m = make(map[uint64]int32, sizeHint)
	return ix
}

// lookupOrAdd returns the group id for key, assigning the next id when the
// key is new. Ids are dense and ordered by first occurrence of the key in
// the call sequence.
func (ix *groupIndexer) lookupOrAdd(key []int32) (g int32, isNew bool) {
	switch {
	case ix.dense != nil:
		h := uint64(0)
		for k, code := range key {
			h += uint64(code) * ix.radix[k]
		}
		if id := ix.dense[h]; id != 0 {
			return id - 1, false
		}
		ix.dense[h] = ix.n + 1
	case ix.m != nil:
		h := uint64(0)
		for k, code := range key {
			h += uint64(code) * ix.radix[k]
		}
		if id, found := ix.m[h]; found {
			return id, false
		}
		ix.m[h] = ix.n
	default:
		for k, code := range key {
			ix.buf[4*k] = byte(code)
			ix.buf[4*k+1] = byte(code >> 8)
			ix.buf[4*k+2] = byte(code >> 16)
			ix.buf[4*k+3] = byte(code >> 24)
		}
		if id, found := ix.ms[string(ix.buf)]; found {
			return id, false
		}
		ix.ms[string(ix.buf)] = ix.n
	}
	g = ix.n
	ix.n++
	return g, true
}

// cubeAccum is one accumulator of the sharded build: either a shard's
// private partial aggregate or the global merge target.
type cubeAccum struct {
	ix      *groupIndexer
	stride  int
	keyData []int32
	counts  []int64
	sums    [][]float64
	mins    [][]float64
	maxs    [][]float64
	rows    int
}

func newCubeAccum(rel *table.Relation, sorted []int, sizeHint int) *cubeAccum {
	m := rel.NumMeasures()
	a := &cubeAccum{
		ix:     newGroupIndexer(rel, sorted, sizeHint),
		stride: len(sorted),
		sums:   make([][]float64, m),
		mins:   make([][]float64, m),
		maxs:   make([][]float64, m),
	}
	return a
}

// addGroup appends a fresh group with the given key and empty statistics.
func (a *cubeAccum) addGroup(key []int32) {
	a.keyData = append(a.keyData, key...)
	a.counts = append(a.counts, 0)
	for j := range a.sums {
		a.sums[j] = append(a.sums[j], 0)
		a.mins[j] = append(a.mins[j], math.NaN())
		a.maxs[j] = append(a.maxs[j], math.NaN())
	}
}

// scan aggregates rows [lo, hi) of the relation into the accumulator.
func (a *cubeAccum) scan(cols [][]int32, meas [][]float64, lo, hi int) {
	keyBuf := make([]int32, a.stride)
	for row := lo; row < hi; row++ {
		for k := range cols {
			keyBuf[k] = cols[k][row]
		}
		g, isNew := a.ix.lookupOrAdd(keyBuf)
		if isNew {
			a.addGroup(keyBuf)
		}
		a.counts[g]++
		for j := range meas {
			v := meas[j][row]
			if math.IsNaN(v) {
				continue
			}
			a.sums[j][g] += v
			if math.IsNaN(a.mins[j][g]) || v < a.mins[j][g] {
				a.mins[j][g] = v
			}
			if math.IsNaN(a.maxs[j][g]) || v > a.maxs[j][g] {
				a.maxs[j][g] = v
			}
		}
	}
	a.rows += hi - lo
}

// merge folds a shard's partial aggregate into the accumulator. Shards must
// be merged in ascending shard order: the per-group sum then accumulates
// the shard partials left to right, which is what makes the result
// independent of the number of workers.
func (a *cubeAccum) merge(s *cubeAccum) {
	for sg := 0; sg < len(s.counts); sg++ {
		key := s.keyData[sg*s.stride : (sg+1)*s.stride]
		g, isNew := a.ix.lookupOrAdd(key)
		if isNew {
			a.addGroup(key)
		}
		a.counts[g] += s.counts[sg]
		for j := range a.sums {
			a.sums[j][g] += s.sums[j][sg]
			if v := s.mins[j][sg]; !math.IsNaN(v) && (math.IsNaN(a.mins[j][g]) || v < a.mins[j][g]) {
				a.mins[j][g] = v
			}
			if v := s.maxs[j][sg]; !math.IsNaN(v) && (math.IsNaN(a.maxs[j][g]) || v > a.maxs[j][g]) {
				a.maxs[j][g] = v
			}
		}
	}
	a.rows += s.rows
}

func (a *cubeAccum) toCube(rel *table.Relation, sorted []int) *Cube {
	return &Cube{
		rel: rel, attrs: sorted, stride: len(sorted),
		keyData: a.keyData, counts: a.counts,
		sums: a.sums, mins: a.mins, maxs: a.maxs,
		SourceRows: a.rows,
	}
}

// BuildCube aggregates the relation over the given categorical attributes
// (order-insensitive; the cube stores them sorted). NaN measure values are
// ignored by Sum/Min/Max but still counted, matching SQL aggregates over a
// table where the dirty cells were NULL. It is the zero-goroutine serial
// path of BuildCubeParallel and produces bit-identical output.
func BuildCube(rel *table.Relation, attrs []int) *Cube {
	return BuildCubeParallel(rel, attrs, 1)
}

// BuildCubeParallel is the sharded cube build: the row range is cut into
// fixed-width shards (buildShardRows), each shard aggregates into a private
// accumulator, and the shard partials are merged in shard order. Because
// the shard boundaries depend only on the relation size and the merge order
// is fixed, the output is bit-identical for every thread count — including
// threads <= 1, which runs the same shards sequentially with zero
// goroutines. Relations of at most one shard skip the merge entirely.
func BuildCubeParallel(rel *table.Relation, attrs []int, threads int) *Cube {
	// The background context never cancels, so the error is impossible.
	cube, _ := BuildCubeParallelCtx(context.Background(), rel, attrs, threads)
	return cube
}

// mixedRadix returns per-position multipliers so that composite keys over
// the given attributes are unique uint64s, or ok=false if the combined code
// space overflows.
func mixedRadix(rel *table.Relation, attrs []int) ([]uint64, bool) {
	radix := make([]uint64, len(attrs))
	prod := uint64(1)
	for i, a := range attrs {
		radix[i] = prod
		d := uint64(rel.DomSize(a))
		if d == 0 {
			d = 1
		}
		if prod > (1<<63)/d {
			return nil, false
		}
		prod *= d
	}
	return radix, true
}

// Rollup aggregates the cube down to a subset of its attributes. All stored
// statistics are distributive (count, sum, min, max), and Avg is derived as
// sum/count, so roll-up is exact. Rollup panics if attrs is not a subset of
// the cube's attributes.
func (c *Cube) Rollup(attrs []int) *Cube {
	sorted := append([]int(nil), attrs...)
	sort.Ints(sorted)
	pos := make([]int, len(sorted))
	for i, want := range sorted {
		pos[i] = mustAttrPos(c.attrs, want)
	}

	out := newCubeAccum(c.rel, sorted, c.NumGroups())
	keyBuf := make([]int32, len(sorted))
	for src := 0; src < c.NumGroups(); src++ {
		srcKey := c.GroupKey(src)
		for i, p := range pos {
			keyBuf[i] = srcKey[p]
		}
		g, isNew := out.ix.lookupOrAdd(keyBuf)
		if isNew {
			out.addGroup(keyBuf)
		}
		out.counts[g] += c.counts[src]
		for j := range out.sums {
			out.sums[j][g] += c.sums[j][src]
			if v := c.mins[j][src]; !math.IsNaN(v) && (math.IsNaN(out.mins[j][g]) || v < out.mins[j][g]) {
				out.mins[j][g] = v
			}
			if v := c.maxs[j][src]; !math.IsNaN(v) && (math.IsNaN(out.maxs[j][g]) || v > out.maxs[j][g]) {
				out.maxs[j][g] = v
			}
		}
	}
	cube := out.toCube(c.rel, sorted)
	cube.SourceRows = c.SourceRows
	return cube
}

// mustUniqueAttrs panics when a sorted group-by attribute set contains a
// duplicate. It is a guarded invariant helper (see the nopanic rule in
// internal/analysis): attribute sets reaching the cube builder come from
// cover.Pair values and candidate enumerations, which are duplicate-free
// by construction, so a duplicate here is a caller bug worth crashing on.
func mustUniqueAttrs(sorted []int) {
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			panic(fmt.Sprintf("engine: duplicate attribute %d in group-by set", sorted[i]))
		}
	}
}

// mustAttrPos returns the index of want within attrs, panicking when it is
// absent. Guarded invariant helper: Rollup's documented contract is that
// the target attributes are a subset of the cube's, and every call site
// derives them from the cube's own attribute set.
func mustAttrPos(attrs []int, want int) int {
	for k, have := range attrs {
		if have == want {
			return k
		}
	}
	panic(fmt.Sprintf("engine: Rollup attribute %d not in cube attrs %v", want, attrs))
}
