package notebook

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteHTMLBasics(t *testing.T) {
	nb := New("ENEDIS <exploration>")
	nb.AddMarkdown("## Step 1 — avg(sales)\n\n- **Insight**: `mean greater`\n- another")
	nb.AddCode("select 1 < 2;")
	nb.AddMarkdown("| g | a | b |\n|---|---|---|\n| x | 1 | 2 |")
	var buf bytes.Buffer
	if err := nb.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<title>ENEDIS &lt;exploration&gt;</title>",
		"<h1>Comparison", // nothing — title cell says "# ENEDIS <exploration>"
		"<h2>Step 1 — avg(sales)</h2>",
		"<li><strong>Insight</strong>: <code>mean greater</code></li>",
		"<pre><code>select 1 &lt; 2;</code></pre>",
		"<tr><td>x</td><td>1</td><td>2</td></tr>",
	} {
		if want == "<h1>Comparison" {
			continue
		}
		if !strings.Contains(out, want) {
			t.Errorf("HTML missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "<h1>ENEDIS &lt;exploration&gt;</h1>") {
		t.Error("title heading missing or unescaped")
	}
	if strings.Contains(out, "<script") {
		t.Error("unexpected script tag")
	}
}

func TestWriteHTMLSeparatorRowsSkipped(t *testing.T) {
	nb := &Notebook{}
	nb.AddMarkdown("| a | b |\n|---|---|\n| 1 | 2 |")
	var buf bytes.Buffer
	if err := nb.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "---") {
		t.Error("separator row leaked into HTML")
	}
	if got := strings.Count(buf.String(), "<tr>"); got != 2 {
		t.Errorf("table rows = %d, want 2 (header + data)", got)
	}
}

func TestInlineHTMLEscapesFirst(t *testing.T) {
	if got := inlineHTML("a < b & **c**"); !strings.Contains(got, "a &lt; b &amp; <strong>c</strong>") {
		t.Errorf("inlineHTML = %q", got)
	}
	// Unmatched bold marker survives literally.
	if got := inlineHTML("2 ** 3"); !strings.Contains(got, "2 ** 3") {
		t.Errorf("unmatched delimiter mangled: %q", got)
	}
}

func TestWriteHTMLError(t *testing.T) {
	nb := sampleNotebook()
	if err := nb.WriteHTML(&failWriter{n: 0}); err == nil {
		t.Error("failing writer did not propagate")
	}
}
