package notebook

import (
	"errors"
	"testing"
)

// failWriter fails after n successful writes.
type failWriter struct {
	n int
}

var errSink = errors.New("sink failed")

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errSink
	}
	w.n--
	return len(p), nil
}

func TestWriteMarkdownPropagatesErrors(t *testing.T) {
	nb := sampleNotebook()
	for budget := 0; budget < 8; budget++ {
		err := nb.WriteMarkdown(&failWriter{n: budget})
		if budget < 8-1 && err == nil {
			// Depending on cell count some budgets may suffice; only the
			// zero budget is guaranteed to fail.
			if budget == 0 {
				t.Error("write to immediately failing writer succeeded")
			}
		}
	}
	if err := nb.WriteMarkdown(&failWriter{n: 0}); !errors.Is(err, errSink) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestWriteIPYNBPropagatesErrors(t *testing.T) {
	nb := sampleNotebook()
	if err := nb.WriteIPYNB(&failWriter{n: 0}); err == nil {
		t.Error("ipynb write to failing writer succeeded")
	}
}
