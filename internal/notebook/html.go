package notebook

import (
	"fmt"
	"html"
	"io"
	"strings"
)

// WriteHTML serialises the notebook as a self-contained HTML document:
// Markdown cells are rendered with a small subset of Markdown (headings,
// bullet lists, bold, inline code, tables) and code cells become
// highlighted <pre> blocks. The output opens in any browser, which makes
// it the easiest artifact to hand to the "data enthusiast" of the paper's
// introduction.
func (nb *Notebook) WriteHTML(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(&sb, "<title>%s</title>\n", html.EscapeString(nb.Title))
	sb.WriteString(`<style>
body { font-family: Georgia, serif; max-width: 56rem; margin: 2rem auto; padding: 0 1rem; color: #222; }
pre { background: #f4f4f4; border-left: 3px solid #888; padding: 0.8rem; overflow-x: auto; font-size: 0.9rem; }
code { background: #f4f4f4; padding: 0 0.2rem; }
table { border-collapse: collapse; margin: 0.8rem 0; }
td, th { border: 1px solid #bbb; padding: 0.25rem 0.6rem; text-align: left; }
h1 { border-bottom: 2px solid #222; padding-bottom: 0.3rem; }
h2 { margin-top: 2rem; }
em { color: #666; }
</style>
</head>
<body>
`)
	for _, c := range nb.Cells {
		if c.Type == Code {
			fmt.Fprintf(&sb, "<pre><code>%s</code></pre>\n", html.EscapeString(strings.TrimRight(c.Source, "\n")))
			continue
		}
		sb.WriteString(renderMarkdownHTML(c.Source))
	}
	sb.WriteString("</body>\n</html>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// renderMarkdownHTML converts the subset of Markdown the notebook builder
// emits (headings, bullets, tables, bold, inline code) to HTML.
func renderMarkdownHTML(src string) string {
	var sb strings.Builder
	lines := strings.Split(src, "\n")
	inList, inTable := false, false
	closeList := func() {
		if inList {
			sb.WriteString("</ul>\n")
			inList = false
		}
	}
	closeTable := func() {
		if inTable {
			sb.WriteString("</table>\n")
			inTable = false
		}
	}
	for _, line := range lines {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "## "):
			closeList()
			closeTable()
			fmt.Fprintf(&sb, "<h2>%s</h2>\n", inlineHTML(trimmed[3:]))
		case strings.HasPrefix(trimmed, "# "):
			closeList()
			closeTable()
			fmt.Fprintf(&sb, "<h1>%s</h1>\n", inlineHTML(trimmed[2:]))
		case strings.HasPrefix(trimmed, "- "):
			closeTable()
			if !inList {
				sb.WriteString("<ul>\n")
				inList = true
			}
			fmt.Fprintf(&sb, "<li>%s</li>\n", inlineHTML(trimmed[2:]))
		case strings.HasPrefix(trimmed, "|"):
			closeList()
			cells := splitTableRow(trimmed)
			if isSeparatorRow(cells) {
				continue
			}
			if !inTable {
				sb.WriteString("<table>\n")
				inTable = true
			}
			sb.WriteString("<tr>")
			for _, cell := range cells {
				fmt.Fprintf(&sb, "<td>%s</td>", inlineHTML(cell))
			}
			sb.WriteString("</tr>\n")
		case trimmed == "":
			closeList()
			closeTable()
		default:
			closeList()
			closeTable()
			fmt.Fprintf(&sb, "<p>%s</p>\n", inlineHTML(trimmed))
		}
	}
	closeList()
	closeTable()
	return sb.String()
}

func splitTableRow(line string) []string {
	line = strings.Trim(line, "|")
	parts := strings.Split(line, "|")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func isSeparatorRow(cells []string) bool {
	for _, c := range cells {
		if strings.Trim(c, "-: ") != "" {
			return false
		}
	}
	return len(cells) > 0
}

// inlineHTML escapes a text fragment and applies **bold**, _italic_ and
// `code` spans.
func inlineHTML(s string) string {
	esc := html.EscapeString(s)
	esc = replacePairs(esc, "**", "<strong>", "</strong>")
	esc = replacePairs(esc, "`", "<code>", "</code>")
	esc = replacePairs(esc, "_", "<em>", "</em>")
	return esc
}

// replacePairs substitutes alternating occurrences of delim with open and
// close tags; an unmatched trailing delimiter is left verbatim.
func replacePairs(s, delim, open, close string) string {
	parts := strings.Split(s, delim)
	if len(parts) == 1 {
		return s
	}
	var sb strings.Builder
	for i, p := range parts {
		if i == 0 {
			sb.WriteString(p)
			continue
		}
		if i%2 == 1 {
			if i == len(parts)-1 {
				// Unmatched opener: restore the literal delimiter.
				sb.WriteString(delim)
				sb.WriteString(p)
				continue
			}
			sb.WriteString(open)
			sb.WriteString(p)
		} else {
			sb.WriteString(close)
			sb.WriteString(p)
		}
	}
	return sb.String()
}
