// Package notebook models the generated artifact — a comparison notebook,
// i.e. a finite sequence of comparison queries with commentary — and
// exports it as a Jupyter notebook (nbformat 4) or Markdown. The paper's
// user study deployed exactly such SQL notebooks on Jupyter (§6.5).
package notebook

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// CellType distinguishes notebook cells.
type CellType int

const (
	// Markdown cells carry commentary (insight descriptions, titles).
	Markdown CellType = iota
	// Code cells carry the SQL of a comparison query.
	Code
)

// Cell is one notebook cell.
type Cell struct {
	Type   CellType
	Source string
}

// Notebook is an ordered sequence of cells.
type Notebook struct {
	Title string
	Cells []Cell
}

// New creates a notebook whose first cell is a Markdown title.
func New(title string) *Notebook {
	nb := &Notebook{Title: title}
	nb.AddMarkdown("# " + title)
	return nb
}

// AddMarkdown appends a Markdown cell.
func (nb *Notebook) AddMarkdown(src string) { nb.Cells = append(nb.Cells, Cell{Markdown, src}) }

// AddCode appends a code (SQL) cell.
func (nb *Notebook) AddCode(src string) { nb.Cells = append(nb.Cells, Cell{Code, src}) }

// NumQueries counts the code cells.
func (nb *Notebook) NumQueries() int {
	n := 0
	for _, c := range nb.Cells {
		if c.Type == Code {
			n++
		}
	}
	return n
}

// ipynb document shapes (nbformat 4.5).
type ipynbDoc struct {
	Cells         []ipynbCell    `json:"cells"`
	Metadata      map[string]any `json:"metadata"`
	NBFormat      int            `json:"nbformat"`
	NBFormatMinor int            `json:"nbformat_minor"`
}

type ipynbCell struct {
	CellType       string         `json:"cell_type"`
	ExecutionCount *int           `json:"execution_count,omitempty"`
	Metadata       map[string]any `json:"metadata"`
	Outputs        []any          `json:"outputs,omitempty"`
	Source         []string       `json:"source"`
}

// WriteIPYNB serialises the notebook as a Jupyter nbformat-4 document.
func (nb *Notebook) WriteIPYNB(w io.Writer) error {
	doc := ipynbDoc{
		Metadata: map[string]any{
			"language_info": map[string]any{"name": "sql"},
			"title":         nb.Title,
		},
		NBFormat:      4,
		NBFormatMinor: 5,
	}
	for _, c := range nb.Cells {
		cell := ipynbCell{Metadata: map[string]any{}, Source: splitSource(c.Source)}
		if c.Type == Code {
			cell.CellType = "code"
			cell.Outputs = []any{}
		} else {
			cell.CellType = "markdown"
		}
		doc.Cells = append(doc.Cells, cell)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// splitSource converts a source string into Jupyter's line-array form,
// each line keeping its trailing newline except the last.
func splitSource(s string) []string {
	lines := strings.SplitAfter(s, "\n")
	if len(lines) > 0 && lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	if lines == nil {
		lines = []string{}
	}
	return lines
}

// WriteMarkdown serialises the notebook as a Markdown document with fenced
// SQL blocks.
func (nb *Notebook) WriteMarkdown(w io.Writer) error {
	for i, c := range nb.Cells {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		var err error
		if c.Type == Code {
			_, err = fmt.Fprintf(w, "```sql\n%s\n```\n", strings.TrimRight(c.Source, "\n"))
		} else {
			_, err = fmt.Fprintf(w, "%s\n", strings.TrimRight(c.Source, "\n"))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// ReadIPYNB parses a Jupyter document produced by WriteIPYNB (or any
// nbformat-4 file with markdown/code cells), mainly so tests and tools can
// round-trip notebooks.
func ReadIPYNB(r io.Reader) (*Notebook, error) {
	var doc ipynbDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("notebook: decoding ipynb: %w", err)
	}
	nb := &Notebook{}
	if t, ok := doc.Metadata["title"].(string); ok {
		nb.Title = t
	}
	for _, c := range doc.Cells {
		src := strings.Join(c.Source, "")
		switch c.CellType {
		case "code":
			nb.AddCode(src)
		case "markdown":
			nb.AddMarkdown(src)
		default:
			// Ignore raw and unknown cell types.
		}
	}
	return nb, nil
}
