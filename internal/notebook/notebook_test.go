package notebook

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleNotebook() *Notebook {
	nb := New("ENEDIS exploration")
	nb.AddMarkdown("**Insight**: mean consumption greater in 2020 than 2019")
	nb.AddCode("select 1;\nselect 2;")
	nb.AddMarkdown("Second step")
	nb.AddCode("select 3;")
	return nb
}

func TestNewAddsTitleCell(t *testing.T) {
	nb := New("T")
	if len(nb.Cells) != 1 || nb.Cells[0].Type != Markdown || nb.Cells[0].Source != "# T" {
		t.Errorf("title cell wrong: %+v", nb.Cells)
	}
}

func TestNumQueries(t *testing.T) {
	if got := sampleNotebook().NumQueries(); got != 2 {
		t.Errorf("NumQueries = %d, want 2", got)
	}
}

func TestWriteIPYNBValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleNotebook().WriteIPYNB(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc["nbformat"].(float64) != 4 {
		t.Errorf("nbformat = %v, want 4", doc["nbformat"])
	}
	cells := doc["cells"].([]any)
	if len(cells) != 5 {
		t.Fatalf("cells = %d, want 5", len(cells))
	}
	code := cells[2].(map[string]any)
	if code["cell_type"] != "code" {
		t.Errorf("cell 2 type = %v", code["cell_type"])
	}
	src := code["source"].([]any)
	if src[0] != "select 1;\n" || src[1] != "select 2;" {
		t.Errorf("source lines = %v", src)
	}
}

func TestIPYNBRoundTrip(t *testing.T) {
	nb := sampleNotebook()
	var buf bytes.Buffer
	if err := nb.WriteIPYNB(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadIPYNB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Title != nb.Title {
		t.Errorf("title = %q, want %q", back.Title, nb.Title)
	}
	if len(back.Cells) != len(nb.Cells) {
		t.Fatalf("cells = %d, want %d", len(back.Cells), len(nb.Cells))
	}
	for i := range nb.Cells {
		if back.Cells[i] != nb.Cells[i] {
			t.Errorf("cell %d = %+v, want %+v", i, back.Cells[i], nb.Cells[i])
		}
	}
}

func TestReadIPYNBBadInput(t *testing.T) {
	if _, err := ReadIPYNB(strings.NewReader("not json")); err == nil {
		t.Error("want error on invalid JSON")
	}
}

func TestReadIPYNBIgnoresRawCells(t *testing.T) {
	doc := `{"cells":[{"cell_type":"raw","metadata":{},"source":["x"]},
	{"cell_type":"markdown","metadata":{},"source":["hi"]}],
	"metadata":{},"nbformat":4,"nbformat_minor":5}`
	nb, err := ReadIPYNB(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(nb.Cells) != 1 || nb.Cells[0].Source != "hi" {
		t.Errorf("cells = %+v", nb.Cells)
	}
}

func TestWriteMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleNotebook().WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# ENEDIS exploration",
		"```sql\nselect 1;\nselect 2;\n```",
		"Second step",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestSplitSource(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", []string{}},
		{"a", []string{"a"}},
		{"a\n", []string{"a\n"}},
		{"a\nb", []string{"a\n", "b"}},
		{"a\n\nb\n", []string{"a\n", "\n", "b\n"}},
	}
	for _, c := range cases {
		got := splitSource(c.in)
		if len(got) != len(c.want) {
			t.Errorf("splitSource(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("splitSource(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}
