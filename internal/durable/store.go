package durable

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"comparenb/internal/faultinject"
)

// Store is the atomic file store under one root directory. Every write
// follows the same protocol — write to a temp file in the destination
// directory, fsync it, rename it over the final name, fsync the
// directory — so a reader (including a recovering server) either sees
// the complete previous content or the complete new content, never a
// partial file. Crashes can leave stale *.tmp files behind; they are
// swept on Open and never read.
type Store struct {
	root string
}

// OpenStore opens (creating if absent) a store rooted at dir and removes
// any temp files a previous crash abandoned.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("creating store dir: %w", err)
	}
	s := &Store{root: dir}
	if err := s.sweepTemp(); err != nil {
		return nil, err
	}
	return s, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// sweepTemp removes abandoned temp files anywhere under the root.
func (s *Store) sweepTemp() error {
	return filepath.WalkDir(s.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == tmpExt {
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("sweeping temp file: %w", err)
			}
		}
		return nil
	})
}

const tmpExt = ".tmp"

// WriteFile atomically writes data at the store-relative path rel,
// creating parent directories as needed, and returns the fingerprint the
// journal should record. The bytes are durable — written, fsynced,
// renamed into place, directory fsynced — when WriteFile returns nil.
func (s *Store) WriteFile(rel string, data []byte) (ArtifactMeta, error) {
	final, err := s.abs(rel)
	if err != nil {
		return ArtifactMeta{}, err
	}
	dir := filepath.Dir(final)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return ArtifactMeta{}, fmt.Errorf("creating %s: %w", dir, err)
	}
	tmp := final + tmpExt
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return ArtifactMeta{}, fmt.Errorf("creating temp file: %w", err)
	}
	faultinject.Fire(faultinject.DiskWrite)
	if _, err := f.Write(data); err != nil {
		_ = f.Close()      // the write error is the one to report
		_ = os.Remove(tmp) // best-effort cleanup; sweep catches leftovers
		return ArtifactMeta{}, fmt.Errorf("writing %s: %w", rel, err)
	}
	faultinject.Fire(faultinject.DiskFsync)
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return ArtifactMeta{}, fmt.Errorf("syncing %s: %w", rel, err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return ArtifactMeta{}, fmt.Errorf("closing %s: %w", rel, err)
	}
	faultinject.Fire(faultinject.DiskRename)
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return ArtifactMeta{}, fmt.Errorf("renaming %s into place: %w", rel, err)
	}
	if err := syncDir(dir); err != nil {
		return ArtifactMeta{}, err
	}
	return Fingerprint(data), nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("opening dir for sync: %w", err)
	}
	faultinject.Fire(faultinject.DiskFsync)
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return fmt.Errorf("syncing dir %s: %w", dir, err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("closing dir %s: %w", dir, err)
	}
	return nil
}

// ReadFile reads the store-relative path rel.
func (s *Store) ReadFile(rel string) ([]byte, error) {
	abs, err := s.abs(rel)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(abs)
}

// ReadVerified reads rel and checks it against the recorded fingerprint.
// Any mismatch — wrong size, wrong hash, missing file — is an error:
// recovery must treat the artifact as lost, not serve near-right bytes.
func (s *Store) ReadVerified(rel string, meta ArtifactMeta) ([]byte, error) {
	data, err := s.ReadFile(rel)
	if err != nil {
		return nil, fmt.Errorf("reading artifact %s: %w", rel, err)
	}
	if got := Fingerprint(data); got != meta {
		return nil, fmt.Errorf("artifact %s failed verification: stored %d bytes %s, journal records %d bytes %s",
			rel, got.Bytes, got.SHA256, meta.Bytes, meta.SHA256)
	}
	return data, nil
}

// Remove deletes the store-relative path rel (file or directory tree).
// A missing path is not an error: removal is used for best-effort
// cleanup of state that may never have been written.
func (s *Store) Remove(rel string) error {
	abs, err := s.abs(rel)
	if err != nil {
		return err
	}
	if err := os.RemoveAll(abs); err != nil {
		return fmt.Errorf("removing %s: %w", rel, err)
	}
	return nil
}

// abs resolves rel under the root, refusing escapes — journal contents
// are trusted, but a corrupt record must not reach outside the state dir.
func (s *Store) abs(rel string) (string, error) {
	clean := filepath.Clean(rel)
	if clean == ".." || filepath.IsAbs(clean) || len(clean) >= 3 && clean[:3] == ".."+string(filepath.Separator) {
		return "", fmt.Errorf("store path %q escapes the state dir", rel)
	}
	return filepath.Join(s.root, clean), nil
}

// Fingerprint computes the ArtifactMeta for data.
func Fingerprint(data []byte) ArtifactMeta {
	sum := sha256.Sum256(data)
	return ArtifactMeta{SHA256: hex.EncodeToString(sum[:]), Bytes: int64(len(data))}
}
