package durable

import (
	"encoding/json"
	"fmt"
)

// SessionState is one relation alive at the end of the journal.
type SessionState struct {
	Name string
	File string // stored CSV, relative to the state dir
	Load json.RawMessage
}

// JobState is the folded fate of one journaled job.
type JobState struct {
	ID      string
	Tenant  string
	Request json.RawMessage

	// Trace is the job's W3C trace id from its admit record (a later
	// done record's trace, if any, wins), "" for journals predating
	// trace propagation.
	Trace string

	// Attempts is the highest execution attempt started (0 = admitted,
	// never started).
	Attempts int

	// Terminal is the job's final record type (RecJobDone, RecJobFailed,
	// RecJobCancelled) or "" when the journal ends with the job admitted
	// or running — i.e. interrupted by a crash.
	Terminal string

	// RecJobDone fields.
	Artifacts map[string]ArtifactMeta
	Summary   json.RawMessage

	// RecJobFailed fields.
	Code      int
	Error     string
	Permanent bool
}

// Interrupted reports whether the journal left the job non-terminal: a
// crash cut it off while admitted or running, and recovery must either
// re-run or quarantine it.
func (j *JobState) Interrupted() bool { return j.Terminal == "" }

// State is the journal folded down to what a recovering server needs.
type State struct {
	// Sessions in first-load order, drops and reloads applied.
	Sessions []*SessionState
	// Jobs in admission order, every journaled job exactly once.
	Jobs []*JobState
}

// Replay folds a journal into its end state. Records are applied in
// order; later records win (a reloaded session replaces the dropped one,
// a terminal record settles a job). Records referencing unknown job ids
// are corruption and an error — the journal is written admit-first.
func Replay(recs []Record) (*State, error) {
	st := &State{}
	sessions := make(map[string]*SessionState)
	sessionOrder := []string{}
	ordered := make(map[string]bool)
	jobs := make(map[string]*JobState)

	job := func(i int, rec Record) (*JobState, error) {
		if rec.ID == "" {
			return nil, fmt.Errorf("journal record %d (%s): empty job id", i+1, rec.Type)
		}
		j := jobs[rec.ID]
		if j == nil {
			return nil, fmt.Errorf("journal record %d (%s): job %s has no admit record", i+1, rec.Type, rec.ID)
		}
		return j, nil
	}

	for i, rec := range recs {
		switch rec.Type {
		case RecSessionLoad:
			if rec.Name == "" {
				return nil, fmt.Errorf("journal record %d: session-load with empty name", i+1)
			}
			if !ordered[rec.Name] {
				ordered[rec.Name] = true
				sessionOrder = append(sessionOrder, rec.Name)
			}
			sessions[rec.Name] = &SessionState{Name: rec.Name, File: rec.File, Load: rec.Load}
		case RecSessionDrop:
			delete(sessions, rec.Name)
		case RecJobAdmit:
			if rec.ID == "" {
				return nil, fmt.Errorf("journal record %d: job-admit with empty id", i+1)
			}
			if _, dup := jobs[rec.ID]; dup {
				return nil, fmt.Errorf("journal record %d: job %s admitted twice", i+1, rec.ID)
			}
			j := &JobState{ID: rec.ID, Tenant: rec.Tenant, Request: rec.Request, Trace: rec.Trace}
			jobs[rec.ID] = j
			st.Jobs = append(st.Jobs, j)
		case RecJobStart:
			j, err := job(i, rec)
			if err != nil {
				return nil, err
			}
			if rec.Attempt > j.Attempts {
				j.Attempts = rec.Attempt
			}
			// A start after a terminal record is a recovery re-run of a
			// job a previous replay re-enqueued; it reopens the job.
			j.Terminal = ""
		case RecJobDone:
			j, err := job(i, rec)
			if err != nil {
				return nil, err
			}
			j.Terminal = RecJobDone
			j.Artifacts = rec.Artifacts
			j.Summary = rec.Summary
			if rec.Trace != "" {
				j.Trace = rec.Trace
			}
			j.Code, j.Error, j.Permanent = 0, "", false
		case RecJobFailed:
			j, err := job(i, rec)
			if err != nil {
				return nil, err
			}
			j.Terminal = RecJobFailed
			j.Code, j.Error, j.Permanent = rec.Code, rec.Error, rec.Permanent
		case RecJobCancelled:
			j, err := job(i, rec)
			if err != nil {
				return nil, err
			}
			j.Terminal = RecJobCancelled
		default:
			return nil, fmt.Errorf("journal record %d: unknown type %q", i+1, rec.Type)
		}
	}

	for _, name := range sessionOrder {
		if s, alive := sessions[name]; alive {
			st.Sessions = append(st.Sessions, s)
		}
	}
	return st, nil
}
