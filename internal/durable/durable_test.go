package durable

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func openTestJournal(t *testing.T) (*Journal, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = j.Close() })
	return j, path
}

func TestJournalRoundTrip(t *testing.T) {
	j, path := openTestJournal(t)
	want := []Record{
		{Type: RecSessionLoad, Name: "tiny", File: "relations/tiny.csv", Load: json.RawMessage(`{"max_rows":10}`)},
		{Type: RecJobAdmit, ID: "j000001", Tenant: "acme", Request: json.RawMessage(`{"relation":"tiny"}`)},
		{Type: RecJobStart, ID: "j000001", Attempt: 1},
		{Type: RecJobDone, ID: "j000001",
			Artifacts: map[string]ArtifactMeta{"ipynb": {SHA256: "ab", Bytes: 2}},
			Summary:   json.RawMessage(`{"queries":4}`)},
	}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		g, _ := json.Marshal(got[i])
		w, _ := json.Marshal(want[i])
		if string(g) != string(w) {
			t.Errorf("record %d: got %s, want %s", i, g, w)
		}
	}
}

// TestJournalTornTailIgnored simulates a crash mid-append: a final line
// cut off partway (or missing its newline) must read as never written,
// while a torn record in the middle is corruption.
func TestJournalTornTailIgnored(t *testing.T) {
	j, path := openTestJournal(t)
	recs := []Record{
		{Type: RecJobAdmit, ID: "j000001"},
		{Type: RecJobStart, ID: "j000001", Attempt: 1},
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for name, tail := range map[string]string{
		"partial JSON":     `{"t":"job-done","id":"j0000`,
		"missing newline":  `{"t":"job-done","id":"j000001"}`,
		"half aterminator": "{",
	} {
		torn := filepath.Join(t.TempDir(), "torn.jsonl")
		if err := os.WriteFile(torn, append(append([]byte(nil), data...), tail...), 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := ReadJournal(torn)
		if err != nil {
			t.Fatalf("%s: torn tail should be skipped, got error %v", name, err)
		}
		if len(got) != 2 {
			t.Errorf("%s: read %d records, want the 2 acknowledged ones", name, len(got))
		}
	}

	// The same garbage mid-file is corruption, not a torn tail.
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, append([]byte("{not json}\n"), data...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(bad); err == nil {
		t.Error("mid-file corruption read back without error")
	}
}

func TestJournalMissingFileIsEmpty(t *testing.T) {
	recs, err := ReadJournal(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || recs != nil {
		t.Fatalf("missing journal: got %v records, err %v; want nil, nil", recs, err)
	}
}

func TestStoreWriteReadVerified(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(`{"cells": []}`)
	meta, err := s.WriteFile("artifacts/j000001/ipynb", data)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Bytes != int64(len(data)) || len(meta.SHA256) != 64 {
		t.Fatalf("fingerprint %+v looks wrong", meta)
	}
	got, err := s.ReadVerified("artifacts/j000001/ipynb", meta)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Errorf("read back %q, want %q", got, data)
	}

	// Overwrites are atomic replacements.
	if _, err := s.WriteFile("artifacts/j000001/ipynb", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.ReadFile("artifacts/j000001/ipynb"); string(got) != "v2" {
		t.Errorf("after overwrite read %q, want v2", got)
	}

	// Verification fails closed on corruption and on missing files.
	if _, err := s.ReadVerified("artifacts/j000001/ipynb", meta); err == nil {
		t.Error("ReadVerified accepted bytes that do not match the recorded hash")
	}
	if _, err := s.ReadVerified("artifacts/gone", meta); err == nil {
		t.Error("ReadVerified accepted a missing file")
	}
}

// TestStoreSweepsTempFiles: a crash between temp write and rename leaves
// a .tmp file; reopening the store removes it and the final name never
// appears.
func TestStoreSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteFile("a/keep", []byte("kept")); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash artifact by hand.
	if err := os.WriteFile(filepath.Join(dir, "a", "partial.tmp"), []byte("par"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "a", "partial.tmp")); !os.IsNotExist(err) {
		t.Errorf("temp file survived store reopen (err %v)", err)
	}
	if got, err := s.ReadFile("a/keep"); err != nil || string(got) != "kept" {
		t.Errorf("sweep touched a committed file: %q, %v", got, err)
	}
}

func TestStoreRefusesEscapes(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{"../outside", "/etc/passwd", "a/../../outside"} {
		if _, err := s.WriteFile(rel, []byte("x")); err == nil || !strings.Contains(err.Error(), "escapes") {
			t.Errorf("WriteFile(%q) = %v, want escape refusal", rel, err)
		}
	}
}

func TestReplayFoldsLifecycles(t *testing.T) {
	recs := []Record{
		{Type: RecSessionLoad, Name: "a", File: "relations/a.csv"},
		{Type: RecSessionLoad, Name: "b", File: "relations/b.csv"},
		{Type: RecSessionDrop, Name: "a"},
		{Type: RecSessionLoad, Name: "a", File: "relations/a2.csv"},
		{Type: RecJobAdmit, ID: "j000001", Tenant: "t1", Trace: "0af7651916cd43dd8448eb211c80319c"},
		{Type: RecJobStart, ID: "j000001", Attempt: 1},
		{Type: RecJobDone, ID: "j000001", Artifacts: map[string]ArtifactMeta{"ipynb": {SHA256: "x", Bytes: 1}}},
		{Type: RecJobAdmit, ID: "j000002", Tenant: "t2", Trace: "1bf7651916cd43dd8448eb211c80319c"},
		{Type: RecJobStart, ID: "j000002", Attempt: 1},
		{Type: RecJobStart, ID: "j000002", Attempt: 2},
		{Type: RecJobAdmit, ID: "j000003", Tenant: "t1"},
		{Type: RecJobAdmit, ID: "j000004", Tenant: "t1"},
		{Type: RecJobFailed, ID: "j000004", Code: 503, Error: "drained"},
	}
	st, err := Replay(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Sessions) != 2 || st.Sessions[0].Name != "a" || st.Sessions[0].File != "relations/a2.csv" {
		t.Fatalf("sessions = %+v, want reloaded a then b", st.Sessions)
	}
	if len(st.Jobs) != 4 {
		t.Fatalf("replayed %d jobs, want 4", len(st.Jobs))
	}
	byID := map[string]*JobState{}
	for _, j := range st.Jobs {
		byID[j.ID] = j
	}
	if j := byID["j000001"]; j.Terminal != RecJobDone || j.Interrupted() || j.Artifacts["ipynb"].Bytes != 1 {
		t.Errorf("done job folded wrong: %+v", j)
	}
	// Trace correlation survives the fold: the admit record's trace id
	// sticks to the job through start and terminal records.
	if j := byID["j000001"]; j.Trace != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("done job trace = %q, want admit trace kept", j.Trace)
	}
	if j := byID["j000002"]; !j.Interrupted() || j.Attempts != 2 {
		t.Errorf("interrupted running job folded wrong: %+v", j)
	}
	if j := byID["j000002"]; j.Trace != "1bf7651916cd43dd8448eb211c80319c" {
		t.Errorf("interrupted job trace = %q, want admit trace kept", j.Trace)
	}
	if j := byID["j000003"]; !j.Interrupted() || j.Attempts != 0 {
		t.Errorf("interrupted queued job folded wrong: %+v", j)
	}
	if j := byID["j000004"]; j.Terminal != RecJobFailed || j.Code != 503 {
		t.Errorf("failed job folded wrong: %+v", j)
	}
}

func TestReplayRejectsCorruption(t *testing.T) {
	cases := map[string][]Record{
		"start without admit": {{Type: RecJobStart, ID: "j1", Attempt: 1}},
		"done without admit":  {{Type: RecJobDone, ID: "j1"}},
		"double admit":        {{Type: RecJobAdmit, ID: "j1"}, {Type: RecJobAdmit, ID: "j1"}},
		"unknown type":        {{Type: "job-teleported", ID: "j1"}},
		"empty session name":  {{Type: RecSessionLoad}},
	}
	for name, recs := range cases {
		if _, err := Replay(recs); err == nil {
			t.Errorf("%s: replay accepted corrupt journal", name)
		}
	}
}

func TestRetryPolicy(t *testing.T) {
	p := RetryPolicy{}.WithDefaults()
	if p.MaxAttempts != 3 || p.Base != 250*time.Millisecond {
		t.Fatalf("defaults = %+v", p)
	}
	if p.Exhausted(2) || !p.Exhausted(3) || !p.Exhausted(4) {
		t.Error("Exhausted boundary wrong for MaxAttempts=3")
	}
	if d := p.Backoff("j1", 0); d != 0 {
		t.Errorf("attempt 0 backoff = %v, want 0 (admitted jobs retry immediately)", d)
	}

	// Deterministic: same (id, attempt) always yields the same delay;
	// different ids de-synchronise.
	if a, b := p.Backoff("j1", 1), p.Backoff("j1", 1); a != b {
		t.Errorf("backoff not deterministic: %v vs %v", a, b)
	}
	if a, b := p.Backoff("j1", 2), p.Backoff("j2", 2); a == b {
		t.Logf("note: jitter collision between jobs (possible but unlikely): %v", a)
	}

	// Exponential envelope: delay for attempt N lies in [base·2^(N−1), 1.5×that], capped.
	p = RetryPolicy{MaxAttempts: 10, Base: 100 * time.Millisecond, Cap: time.Second}.WithDefaults()
	for attempt := 1; attempt <= 8; attempt++ {
		want := 100 * time.Millisecond << (attempt - 1)
		if want > time.Second {
			want = time.Second
		}
		d := p.Backoff("job", attempt)
		if d < want || d > want+want/2 {
			t.Errorf("attempt %d backoff %v outside [%v, %v]", attempt, d, want, want+want/2)
		}
	}
}
