package durable

import (
	"hash/fnv"
	"time"
)

// RetryPolicy bounds how often a crash-interrupted job is re-run.
// Attempts count executions: a job whose attempt-N run was interrupted
// is re-enqueued for attempt N+1 after Backoff(id, N), until N reaches
// MaxAttempts — then it is quarantined (failed_permanent), never
// silently dropped.
type RetryPolicy struct {
	// MaxAttempts is the number of execution attempts a job may consume
	// before quarantine (minimum 1).
	MaxAttempts int
	// Base is the first retry's backoff; each further attempt doubles
	// it (capped by Cap).
	Base time.Duration
	// Cap bounds a single backoff delay (0 = 64×Base).
	Cap time.Duration
}

// WithDefaults returns p with zero fields defaulted: 3 attempts, 250 ms
// base, 64×base cap.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.Base <= 0 {
		p.Base = 250 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 64 * p.Base
	}
	return p
}

// Exhausted reports whether a job interrupted during the given attempt
// (1-based) has no retries left and must be quarantined.
func (p RetryPolicy) Exhausted(attempt int) bool {
	return attempt >= p.MaxAttempts
}

// Backoff returns the delay before re-running a job whose attempt-N run
// was interrupted: Base·2^(N−1) plus a deterministic jitter of up to half
// the delay, derived from (id, attempt) so the schedule is reproducible
// across restarts yet de-synchronised across jobs. attempt 0 (admitted
// but never started) retries immediately.
func (p RetryPolicy) Backoff(id string, attempt int) time.Duration {
	if attempt <= 0 {
		return 0
	}
	d := p.Base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.Cap {
			d = p.Cap
			break
		}
	}
	if d > p.Cap {
		d = p.Cap
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(id)) // fnv's Write cannot fail
	var buf [1]byte
	buf[0] = byte(attempt)
	_, _ = h.Write(buf[:])
	jitter := time.Duration(h.Sum64() % uint64(d/2+1))
	return d + jitter
}
