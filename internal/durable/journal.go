// Package durable is the crash-safety layer under the notebook server:
// a write-ahead job journal plus an atomic artifact store, both rooted
// in one operator-chosen state directory. The server journals every
// lifecycle transition (session loads, job admissions, starts, terminal
// states) before acknowledging it, persists finished artifacts with a
// temp-file/fsync/rename protocol, and on restart replays the journal to
// reconstruct exactly the state a crash interrupted.
//
// The package deliberately knows nothing about HTTP, jobs or pipelines:
// records carry opaque JSON payloads (requests, summaries) that the
// server round-trips. What durable owns is the on-disk discipline —
// every write is followed by an fsync before it is relied upon, every
// visible file arrives by rename, and a record torn by a crash
// mid-append is indistinguishable from one never written.
//
// Fault sites: the DiskWrite, DiskFsync and DiskRename hooks in
// internal/faultinject fire immediately before the corresponding
// syscall, so crash tests can kill the process at any persistence
// boundary. See docs/ROBUSTNESS.md.
package durable

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"comparenb/internal/faultinject"
)

// Record types. The journal is append-only JSONL; each line is one
// Record whose Type selects which fields are meaningful.
const (
	// RecSessionLoad registers a relation: Name, File (the stored CSV,
	// relative to the state dir) and Load (opaque loader options).
	RecSessionLoad = "session-load"
	// RecSessionDrop removes a relation by Name.
	RecSessionDrop = "session-drop"
	// RecJobAdmit admits a job: ID, Tenant and Request (opaque).
	RecJobAdmit = "job-admit"
	// RecJobStart marks one execution attempt of a job: ID, Attempt
	// (1-based). A job with a start record and no terminal record was
	// interrupted by a crash.
	RecJobStart = "job-start"
	// RecJobDone completes a job: ID, Artifacts (per-format hash/size,
	// the files live in the artifact store) and Summary (opaque).
	RecJobDone = "job-done"
	// RecJobFailed fails a job: ID, Code, Error. Permanent marks a
	// quarantine decision — replay must not retry the job again.
	RecJobFailed = "job-failed"
	// RecJobCancelled cancels a job: ID.
	RecJobCancelled = "job-cancelled"
)

// ArtifactMeta is the journal's fingerprint of one stored artifact. The
// recorded hash is what recovery verifies recovered bytes against —
// extending the byte-identity gate across a process boundary.
type ArtifactMeta struct {
	SHA256 string `json:"sha256"`
	Bytes  int64  `json:"bytes"`
}

// Record is one journal line. Unused fields stay at their zero values
// and are elided from the JSON.
type Record struct {
	Type string `json:"t"`

	// Session fields.
	Name string          `json:"name,omitempty"`
	File string          `json:"file,omitempty"`
	Load json.RawMessage `json:"load,omitempty"`

	// Job fields. Trace is the job's W3C trace id, carried on job-admit
	// (and echoed on job-done) so a recovered or quarantined job keeps
	// its request correlation across the crash.
	ID        string                  `json:"id,omitempty"`
	Tenant    string                  `json:"tenant,omitempty"`
	Trace     string                  `json:"trace,omitempty"`
	Request   json.RawMessage         `json:"req,omitempty"`
	Attempt   int                     `json:"attempt,omitempty"`
	Artifacts map[string]ArtifactMeta `json:"artifacts,omitempty"`
	Summary   json.RawMessage         `json:"summary,omitempty"`
	Code      int                     `json:"code,omitempty"`
	Error     string                  `json:"error,omitempty"`
	Permanent bool                    `json:"permanent,omitempty"`
}

// Journal is the append-only write-ahead log. Append is safe for
// concurrent use; each record is written in one syscall and fsynced
// before Append returns, so an acknowledged record survives any
// subsequent crash.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenJournal opens (creating if absent) the journal at path for
// appending.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("opening journal: %w", err)
	}
	return &Journal{f: f, path: path}, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append serialises rec, writes it as one line and fsyncs. The record is
// durable when Append returns nil; on error the caller must assume the
// record may or may not survive a crash (a torn tail is skipped by
// ReadJournal either way).
func (j *Journal) Append(rec Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("marshaling journal record: %w", err)
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	faultinject.Fire(faultinject.DiskWrite)
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("appending journal record: %w", err)
	}
	faultinject.Fire(faultinject.DiskFsync)
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("syncing journal: %w", err)
	}
	return nil
}

// Close closes the journal file. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// ReadJournal parses every record in the journal at path. A missing file
// is an empty journal. A torn final line — the signature of a crash
// mid-append — is skipped: an unacknowledged record never happened. A
// malformed record anywhere else is corruption and an error.
func ReadJournal(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("reading journal: %w", err)
	}
	var recs []Record
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	terminated := len(data) > 0 && data[len(data)-1] == '\n'
	var lines [][]byte
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		lines = append(lines, append([]byte(nil), line...))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scanning journal: %w", err)
	}
	for i, line := range lines {
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			if i == len(lines)-1 && !terminated {
				break // torn tail from a crash mid-append
			}
			return nil, fmt.Errorf("journal record %d corrupt: %w", i+1, err)
		}
		if i == len(lines)-1 && !terminated {
			// A complete JSON object without its newline: the crash hit
			// between the payload and the terminator. The record was
			// never acknowledged, so drop it for determinism — replay
			// must not depend on how far a torn write got.
			break
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// StateDirLayout creates the state directory skeleton (root, relations/,
// artifacts/) and returns the journal path within it.
func StateDirLayout(root string) (journalPath string, err error) {
	for _, dir := range []string{root, filepath.Join(root, RelationsDir), filepath.Join(root, ArtifactsDir)} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return "", fmt.Errorf("creating state dir: %w", err)
		}
	}
	return filepath.Join(root, "journal.jsonl"), nil
}

// Subdirectory names within a state dir.
const (
	RelationsDir = "relations"
	ArtifactsDir = "artifacts"
)
