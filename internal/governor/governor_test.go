package governor

import (
	"sync/atomic"
	"testing"
	"time"

	"comparenb/internal/faultinject"
)

// fakeClock drives a governor with a hand-advanced clock so every
// pressure decision is a pure function of the scripted times.
type fakeClock struct {
	t time.Time
}

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestGovernor(total time.Duration) (*Governor, *fakeClock) {
	start := time.Unix(1_000_000, 0)
	clk := &fakeClock{t: start}
	g := New(total, start)
	g.now = clk.now
	return g, clk
}

func TestNilGovernorIsUngoverned(t *testing.T) {
	var g *Governor
	g.StartPhase(Stats) // must not panic
	if lvl := g.Admit(Stats, 5, 10); lvl != Full {
		t.Errorf("nil governor Admit = %v, want Full", lvl)
	}
	if !g.Deadline(TAP).IsZero() {
		t.Errorf("nil governor Deadline = %v, want zero", g.Deadline(TAP))
	}
	if g.MaxLevel(Stats) != Full {
		t.Errorf("nil governor MaxLevel = %v, want Full", g.MaxLevel(Stats))
	}
	if New(0, time.Now()) != nil {
		t.Error("New(0) should return the nil (ungoverned) governor")
	}
}

func TestBudgetSplitAndRollForward(t *testing.T) {
	g, clk := newTestGovernor(10 * time.Second)

	g.StartPhase(Stats)
	statsAllot := g.Deadline(Stats).Sub(clk.t)
	if want := 6 * time.Second; statsAllot != want {
		t.Errorf("stats allotment = %v, want %v (0.6 share of 10s)", statsAllot, want)
	}

	// Stats finishes after only 1s: the 5s of slack must roll forward.
	clk.advance(1 * time.Second)
	g.StartPhase(Hypo)
	hypoAllot := g.Deadline(Hypo).Sub(clk.t)
	// remaining = 9s, hypo share = 0.25/(0.25+0.15) = 0.625 -> 5.625s.
	if want := 5625 * time.Millisecond; hypoAllot != want {
		t.Errorf("hypo allotment = %v, want %v", hypoAllot, want)
	}

	clk.advance(1 * time.Second)
	g.StartPhase(TAP)
	// The last phase always gets everything left, i.e. its deadline is
	// exactly the run deadline start+total — the pre-governor semantics.
	if got, want := g.Deadline(TAP), g.start.Add(g.total); !got.Equal(want) {
		t.Errorf("TAP deadline = %v, want run deadline %v", got, want)
	}
}

func TestAdmitLevels(t *testing.T) {
	g, clk := newTestGovernor(10 * time.Second)
	g.StartPhase(Stats) // deadline = +6s

	if lvl := g.Admit(Stats, 0, 100); lvl != Full {
		t.Errorf("no measurement yet: Admit = %v, want Full", lvl)
	}

	// 10 of 100 units took 200ms: projected 2s < 6s -> Full.
	clk.advance(200 * time.Millisecond)
	if lvl := g.Admit(Stats, 10, 100); lvl != Full {
		t.Errorf("on-track projection: Admit = %v, want Full", lvl)
	}

	// 20 of 100 units took 2s total: projected 10s > 6s -> Degrade.
	clk.advance(1800 * time.Millisecond)
	if lvl := g.Admit(Stats, 20, 100); lvl != Degrade {
		t.Errorf("overrun projection: Admit = %v, want Degrade", lvl)
	}

	// Past the deadline -> Shed, regardless of progress.
	clk.advance(5 * time.Second)
	if lvl := g.Admit(Stats, 99, 100); lvl != Shed {
		t.Errorf("past deadline: Admit = %v, want Shed", lvl)
	}
	if g.MaxLevel(Stats) != Shed {
		t.Errorf("MaxLevel = %v, want Shed", g.MaxLevel(Stats))
	}
	if g.MaxLevel(Hypo) != Full {
		t.Errorf("other phase MaxLevel = %v, want Full", g.MaxLevel(Hypo))
	}
}

func TestAdmitExhaustedBudgetShedsEveryPhase(t *testing.T) {
	g, clk := newTestGovernor(time.Nanosecond)
	clk.advance(time.Second)
	for _, p := range []Phase{Stats, Hypo, TAP} {
		g.StartPhase(p)
		if lvl := g.Admit(p, 0, 10); lvl != Shed {
			t.Errorf("phase %v with spent budget: Admit = %v, want Shed", p, lvl)
		}
	}
}

func TestObserveRecordsForcedLevels(t *testing.T) {
	g, _ := newTestGovernor(time.Hour)
	g.StartPhase(Stats)
	g.Observe(Stats, Degrade)
	if g.MaxLevel(Stats) != Degrade {
		t.Errorf("MaxLevel after Observe = %v, want Degrade", g.MaxLevel(Stats))
	}
	g.Observe(Stats, Full) // Full never lowers the recorded maximum
	if g.MaxLevel(Stats) != Degrade {
		t.Errorf("MaxLevel after Observe(Full) = %v, want Degrade", g.MaxLevel(Stats))
	}
}

func TestStartPhaseFiresRebalanceSite(t *testing.T) {
	var fired atomic.Int64
	defer faultinject.Set(faultinject.GovernorRebalance,
		faultinject.Always(func() { fired.Add(1) }))()
	g, _ := newTestGovernor(time.Second)
	g.StartPhase(Stats)
	g.StartPhase(Hypo)
	if fired.Load() != 2 {
		t.Errorf("GovernorRebalance fired %d times, want 2", fired.Load())
	}
}
