// Package governor splits a run's soft wall-clock budget
// (pipeline.Config.TimeBudget) across the expensive pipeline phases and
// tells each phase, from measured progress, which rung of its
// degradation ladder to run at. It is the scheduling half of the
// graceful-degradation discipline of docs/ROBUSTNESS.md: the phases own
// *what* to cut (fewer permutations, fewer candidate pairs, a heuristic
// solver), the governor owns *when*.
//
// Budget split. At every phase boundary the governor re-splits whatever
// remains of the budget across the phases still to run, proportionally
// to fixed weights (permutation tests dominate the paper's pipeline, so
// they get the largest share). A phase that finishes early donates its
// slack to the later phases automatically — the split is recomputed
// from the wall clock at each StartPhase, never pre-allocated.
//
// Pressure levels. Admit projects the phase's finish time from the
// units of work already completed:
//
//	Full    — on track; run the byte-identical fast path.
//	Degrade — projected to overrun; cut per-unit work (early stopping).
//	Shed    — deadline already passed; drop low-priority units entirely.
//
// A nil *Governor (no budget configured) is valid and always answers
// Full / zero deadlines, so callers need no special-casing.
//
// Determinism. With a generous budget every Admit call observes
// now ≪ deadline and a projection far inside the allotment, so the
// governor returns Full everywhere and perturbs nothing — the
// byte-identity-when-unexhausted contract. Under pressure the chosen
// rungs depend on the wall clock; tests pin them either by forcing a
// level (the pipeline's test-only overrides) or by burning the budget
// at an exact logical operation with a faultinject.Sleep hook on the
// GovernorRebalance site.
package governor

import (
	"sync"
	"time"

	"comparenb/internal/faultinject"
	"comparenb/internal/obs"
)

// Phase identifies one governed pipeline phase, in execution order.
type Phase int

const (
	// Stats is the permutation-testing phase (Algorithm 1 line 3).
	Stats Phase = iota
	// Hypo is the hypothesis-evaluation phase (cube building + support).
	Hypo
	// TAP is the notebook-selection solve.
	TAP

	numPhases
)

func (p Phase) String() string {
	switch p {
	case Stats:
		return "stats"
	case Hypo:
		return "hypo"
	case TAP:
		return "tap"
	default:
		return "Phase(?)"
	}
}

// Level is a rung of a phase's degradation ladder, ordered by severity.
type Level int32

const (
	// Full runs the phase's byte-identical fast path.
	Full Level = iota
	// Degrade cuts per-unit work (e.g. early-stopped permutation tests).
	Degrade
	// Shed drops remaining low-priority work units entirely.
	Shed
)

func (l Level) String() string {
	switch l {
	case Full:
		return "full"
	case Degrade:
		return "degrade"
	case Shed:
		return "shed"
	default:
		return "Level(?)"
	}
}

// weights is the share of the remaining budget each phase receives when
// it starts, normalised over the phases not yet run. Permutation tests
// dominate the paper's runtime breakdown (Figure 8), so they get the
// largest slice; TAP, being last, always receives everything left.
var weights = [numPhases]float64{Stats: 0.6, Hypo: 0.25, TAP: 0.15}

// Governor tracks the run's deadline and the per-phase allotments. All
// methods are safe for concurrent use and nil-safe.
type Governor struct {
	start time.Time
	total time.Duration
	now   func() time.Time // test seam; time.Now in production

	mu       sync.Mutex
	phaseAt  [numPhases]time.Time // when the phase started
	deadline [numPhases]time.Time // the phase's soft deadline
	started  [numPhases]bool
	maxLevel [numPhases]Level // worst level Admit handed out

	// Admission-decision counters, bound by Instrument. Nil (no-op) on an
	// uninstrumented governor. Note these are wall-clock-derived: an
	// unexhausted budget yields all-Full deterministically, but decisions
	// under pressure vary run to run, exactly like the degradation report
	// fields they explain.
	admitFull    *obs.Counter
	admitDegrade *obs.Counter
	admitShed    *obs.Counter
}

// New returns a governor for a run that started at `start` with the
// given soft budget. A non-positive budget means "ungoverned": New
// returns nil, and every method on a nil Governor is a cheap no-op.
func New(total time.Duration, start time.Time) *Governor {
	if total <= 0 {
		return nil
	}
	return &Governor{start: start, total: total, now: time.Now}
}

// Instrument binds the governor's admission counters to reg under the
// governor_admit_* names. Call before the first governed phase starts.
// Nil-safe on both sides: an ungoverned (nil) run registers nothing, so
// the exposition only mentions the governor when one actually ran.
func (g *Governor) Instrument(reg *obs.Registry) {
	if g == nil || reg == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.admitFull = reg.Counter("governor_admit_full")
	g.admitDegrade = reg.Counter("governor_admit_degrade")
	g.admitShed = reg.Counter("governor_admit_shed")
}

// StartPhase marks the phase as begun and computes its soft deadline:
// the remaining run budget times the phase's weight share over all
// not-yet-run phases. Fires the GovernorRebalance fault-injection site.
// The last phase's share is 1, so its deadline is exactly the run
// deadline start+total — which keeps the TAP solver's budget semantics
// bit-for-bit what they were before the governor existed.
func (g *Governor) StartPhase(p Phase) {
	if g == nil {
		return
	}
	faultinject.Fire(faultinject.GovernorRebalance)
	now := g.now()
	remaining := g.start.Add(g.total).Sub(now)
	var wsum float64
	for q := p; q < numPhases; q++ {
		wsum += weights[q]
	}
	allot := time.Duration(float64(remaining) * (weights[p] / wsum))
	g.mu.Lock()
	defer g.mu.Unlock()
	g.phaseAt[p] = now
	g.deadline[p] = now.Add(allot)
	g.started[p] = true
}

// Deadline returns the phase's soft deadline, or the zero time when the
// governor is nil or the phase has not started.
func (g *Governor) Deadline(p Phase) time.Time {
	if g == nil {
		return time.Time{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.deadline[p]
}

// Admit reports which ladder rung the next work unit of the phase
// should run at, given that `done` of `total` units have completed.
// Shed when the phase deadline has already passed; Degrade when the
// linear projection from measured progress overruns the deadline; Full
// otherwise (including before any unit has finished — the first unit is
// the measurement). The worst level handed out is retained for
// MaxLevel. Safe to call from any number of workers.
func (g *Governor) Admit(p Phase, done, total int) Level {
	if g == nil {
		return Full
	}
	g.mu.Lock()
	started, phaseAt, deadline := g.started[p], g.phaseAt[p], g.deadline[p]
	g.mu.Unlock()
	if !started {
		return Full
	}
	now := g.now()
	level := Full
	switch {
	case now.After(deadline):
		level = Shed
	case done > 0 && total > done:
		elapsed := now.Sub(phaseAt)
		projected := phaseAt.Add(time.Duration(float64(elapsed) * float64(total) / float64(done)))
		if projected.After(deadline) {
			level = Degrade
		}
	}
	switch level {
	case Full:
		g.admitFull.Inc()
	case Degrade:
		g.admitDegrade.Inc()
	case Shed:
		g.admitShed.Inc()
	}
	if level != Full {
		g.Observe(p, level)
	}
	return level
}

// Observe records that the phase actually ran a unit at the given
// level, so MaxLevel reflects forced (test-pinned) rungs as well as
// Admit's own decisions.
func (g *Governor) Observe(p Phase, l Level) {
	if g == nil || l == Full {
		return
	}
	g.mu.Lock()
	if l > g.maxLevel[p] {
		g.maxLevel[p] = l
	}
	g.mu.Unlock()
}

// MaxLevel returns the worst rung the phase was admitted at.
func (g *Governor) MaxLevel(p Phase) Level {
	if g == nil {
		return Full
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.maxLevel[p]
}
