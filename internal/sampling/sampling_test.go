package sampling

import (
	"math/rand"
	"testing"

	"comparenb/internal/table"
)

// skewedRelation has a 99:1 skew on attribute "g": value "rare" has few
// rows, value "common" dominates.
func skewedRelation(nCommon, nRare int) *table.Relation {
	b := table.NewBuilder("skew", []string{"g"}, []string{"m"})
	for i := 0; i < nCommon; i++ {
		b.AddRow([]string{"common"}, []float64{float64(i)})
	}
	for i := 0; i < nRare; i++ {
		b.AddRow([]string{"rare"}, []float64{float64(i)})
	}
	return b.Build()
}

func countByValue(rel *table.Relation, attr int) map[string]int {
	out := map[string]int{}
	for _, c := range rel.CatCol(attr) {
		out[rel.Value(attr, c)]++
	}
	return out
}

func TestRandomSampleSize(t *testing.T) {
	rel := skewedRelation(900, 100)
	rng := rand.New(rand.NewSource(1))
	s := RandomSample(rel, 0.2, rng)
	if s.NumRows() != 200 {
		t.Errorf("sample rows = %d, want 200", s.NumRows())
	}
	if full := RandomSample(rel, 1.0, rng); full.NumRows() != 1000 {
		t.Errorf("frac=1 rows = %d, want all", full.NumRows())
	}
	if empty := RandomSample(rel, 0, rng); empty.NumRows() != 0 {
		t.Errorf("frac=0 rows = %d, want 0", empty.NumRows())
	}
}

func TestRandomSampleNoDuplicates(t *testing.T) {
	rel := skewedRelation(50, 50)
	rng := rand.New(rand.NewSource(2))
	s := RandomSample(rel, 0.5, rng)
	seen := map[float64]bool{}
	for _, v := range s.MeasCol(0) {
		// Measures are distinct per (value, index) within a stratum but the
		// two strata overlap; count multiset sizes instead.
		_ = v
	}
	_ = seen
	if s.NumRows() != 50 {
		t.Errorf("rows = %d, want 50", s.NumRows())
	}
}

func TestUnbalancedPreservesMinority(t *testing.T) {
	rel := skewedRelation(9900, 100)
	rng := rand.New(rand.NewSource(3))
	frac := 0.05 // 500 rows total
	uns := UnbalancedSample(rel, 0, frac, rng)
	rs := RandomSample(rel, frac, rng)
	un := countByValue(uns, 0)
	rn := countByValue(rs, 0)
	// Unbalanced keeps the whole rare stratum (100 < equal share 250).
	if un["rare"] != 100 {
		t.Errorf("unbalanced rare count = %d, want 100", un["rare"])
	}
	if un["rare"]+un["common"] != 500 {
		t.Errorf("unbalanced total = %d, want 500", un["rare"]+un["common"])
	}
	// Random keeps about 5 rare rows; allow generous slack but it must be
	// far below the unbalanced count.
	if rn["rare"] >= 50 {
		t.Errorf("random rare count = %d, unexpectedly high", rn["rare"])
	}
}

func TestUnbalancedBalancedStrata(t *testing.T) {
	b := table.NewBuilder("r", []string{"g"}, nil)
	for v := 0; v < 4; v++ {
		for i := 0; i < 1000; i++ {
			b.AddRow([]string{string(rune('a' + v))}, nil)
		}
	}
	rel := b.Build()
	rng := rand.New(rand.NewSource(4))
	s := UnbalancedSample(rel, 0, 0.1, rng)
	counts := countByValue(s, 0)
	for v, c := range counts {
		if c != 100 {
			t.Errorf("stratum %s got %d rows, want equal share 100", v, c)
		}
	}
}

func TestUnbalancedFullFraction(t *testing.T) {
	rel := skewedRelation(30, 10)
	rng := rand.New(rand.NewSource(5))
	s := UnbalancedSample(rel, 0, 1.0, rng)
	if s.NumRows() != 40 {
		t.Errorf("frac=1 rows = %d, want all 40", s.NumRows())
	}
}

func TestUnbalancedTinyBudget(t *testing.T) {
	rel := skewedRelation(100, 100)
	rng := rand.New(rand.NewSource(6))
	s := UnbalancedSample(rel, 0, 0.005, rng) // 1 row
	if s.NumRows() != 1 {
		t.Errorf("tiny budget rows = %d, want 1", s.NumRows())
	}
}

func TestEqualSharesRedistribution(t *testing.T) {
	strata := [][]int{make([]int, 10), make([]int, 1000), make([]int, 1000)}
	take := equalShares(strata, 510)
	if take[0] != 10 {
		t.Errorf("small stratum take = %d, want 10 (all)", take[0])
	}
	if take[1]+take[2] != 500 {
		t.Errorf("large strata take = %d+%d, want 500 total", take[1], take[2])
	}
	if diff := take[1] - take[2]; diff < -1 || diff > 1 {
		t.Errorf("large strata unbalanced: %d vs %d", take[1], take[2])
	}
}

func TestStrategyString(t *testing.T) {
	if None.String() != "none" || Random.String() != "random" || Unbalanced.String() != "unbalanced" {
		t.Error("Strategy.String mismatch")
	}
}
