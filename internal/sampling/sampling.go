// Package sampling implements the two offline sampling strategies of
// §5.1.2 that speed up the statistical tests:
//
//   - random-sampling: a uniform sample of the relation;
//   - unbalanced-sampling: per-attribute stratified samples that balance
//     the number of tuples per attribute value, so very selective values
//     are not under-represented. Because balance is only meaningful with
//     respect to one attribute at a time, the unbalanced strategy samples
//     "each of the n categorical attributes independently": tests on
//     attribute B run on the sample stratified by B.
package sampling

import (
	"math/rand"

	"comparenb/internal/table"
)

// Strategy selects a sampling strategy for the statistical tests.
type Strategy int

const (
	// None runs the tests on the full relation.
	None Strategy = iota
	// Random is the uniform random-sampling strategy.
	Random
	// Unbalanced is the per-attribute stratified strategy.
	Unbalanced
)

func (s Strategy) String() string {
	switch s {
	case None:
		return "none"
	case Random:
		return "random"
	case Unbalanced:
		return "unbalanced"
	default:
		return "Strategy(?)"
	}
}

// RandomSample draws ⌈frac·N⌉ rows uniformly without replacement and
// materialises them as a sub-relation (dictionaries shared with the
// parent). frac is clamped to [0, 1].
func RandomSample(rel *table.Relation, frac float64, rng *rand.Rand) *table.Relation {
	n := rel.NumRows()
	k := targetSize(n, frac)
	if k >= n {
		return rel
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	rows := idx[:k]
	return rel.Select(rows)
}

// UnbalancedSample draws a sample of ⌈frac·N⌉ rows stratified by the given
// categorical attribute: every attribute value receives an equal share of
// the budget (small strata are taken whole and their leftover budget is
// redistributed to larger strata). Tests on attribute attr should use this
// sample, which preserves minority values far better than a uniform sample
// at the same rate.
func UnbalancedSample(rel *table.Relation, attr int, frac float64, rng *rand.Rand) *table.Relation {
	n := rel.NumRows()
	k := targetSize(n, frac)
	if k >= n {
		return rel
	}
	col := rel.CatCol(attr)
	strata := make([][]int, rel.DomSize(attr))
	for row, c := range col {
		strata[c] = append(strata[c], row)
	}
	// Drop empty strata (codes can exist in the dictionary without rows
	// when sampling a sample).
	nonEmpty := strata[:0]
	for _, s := range strata {
		if len(s) > 0 {
			nonEmpty = append(nonEmpty, s)
		}
	}
	strata = nonEmpty

	take := equalShares(strata, k)
	var rows []int
	for si, s := range strata {
		t := take[si]
		if t >= len(s) {
			rows = append(rows, s...)
			continue
		}
		// Partial Fisher–Yates within the stratum.
		local := append([]int(nil), s...)
		for i := 0; i < t; i++ {
			j := i + rng.Intn(len(local)-i)
			local[i], local[j] = local[j], local[i]
		}
		rows = append(rows, local[:t]...)
	}
	return rel.Select(rows)
}

// equalShares allocates budget k across strata as evenly as possible,
// redistributing the unused budget of strata smaller than their share.
func equalShares(strata [][]int, k int) []int {
	take := make([]int, len(strata))
	remainingBudget := k
	// Iteratively: give each unfilled stratum an equal share; strata that
	// can't use their full share return the surplus.
	active := make([]int, 0, len(strata))
	for i := range strata {
		active = append(active, i)
	}
	for remainingBudget > 0 && len(active) > 0 {
		share := remainingBudget / len(active)
		if share == 0 {
			// Distribute the last few units one by one, front to back.
			for _, si := range active {
				if remainingBudget == 0 {
					break
				}
				if take[si] < len(strata[si]) {
					take[si]++
					remainingBudget--
				}
			}
			break
		}
		next := active[:0]
		for _, si := range active {
			room := len(strata[si]) - take[si]
			if room <= share {
				take[si] += room
				remainingBudget -= room
			} else {
				take[si] += share
				remainingBudget -= share
				next = append(next, si)
			}
		}
		active = next
	}
	return take
}

func targetSize(n int, frac float64) int {
	if frac <= 0 {
		return 0
	}
	if frac >= 1 {
		return n
	}
	k := int(frac*float64(n) + 0.999999)
	if k > n {
		k = n
	}
	return k
}
