package pipeline

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"

	"comparenb/internal/datagen"
	"comparenb/internal/obs"
	"comparenb/internal/testutil"
)

func obsTestConfig() Config {
	cfg := NewConfig()
	cfg.Perms = 100
	cfg.Seed = 11
	cfg.EpsT = 5
	cfg.EpsD = 1.5
	return cfg
}

// TestObsByteIdentity is the tentpole's hard constraint: attaching a
// registry (with tracing armed) must leave every serialised artifact
// byte-identical to the unobserved run — observability records, never
// influences.
func TestObsByteIdentity(t *testing.T) {
	cfg := obsTestConfig()
	cfg.Threads = 4
	ipynbOff, mdOff, htmlOff, repOff := renderAll(t, cfg)

	reg := obs.New()
	reg.EnableTracing(0)
	cfg.Obs = reg
	ipynbOn, mdOn, htmlOn, repOn := renderAll(t, cfg)

	check := func(name string, off, on []byte) {
		t.Helper()
		if len(off) == 0 {
			t.Fatalf("%s: run produced no output", name)
		}
		if !bytes.Equal(off, on) {
			t.Errorf("%s differs with observability enabled (%d vs %d bytes)", name, len(off), len(on))
		}
	}
	check("ipynb", ipynbOff, ipynbOn)
	check("markdown", mdOff, mdOn)
	check("html", htmlOff, htmlOn)
	check("report", repOff, repOn)
	if reg.SpanCount() == 0 {
		t.Error("observed run recorded no spans")
	}
}

// TestObsCountersThreadInvariant pins the deterministic half of the
// registry: the full counter/gauge snapshot is identical at every worker
// width, even though the increments happened on different goroutines in
// different orders.
func TestObsCountersThreadInvariant(t *testing.T) {
	ds, err := datagen.Tiny(7, 900)
	if err != nil {
		t.Fatal(err)
	}
	states := make([]map[string]int64, 0, 3)
	widths := []int{1, 2, 8}
	for _, threads := range widths {
		cfg := obsTestConfig()
		cfg.Threads = threads
		reg := obs.New()
		cfg.Obs = reg
		if _, err := Generate(ds.Rel, cfg); err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		states = append(states, reg.DeterministicState())
	}
	base := states[0]
	if base["counter/stats_perms_evaluated"] == 0 || base["counter/engine_cache_misses"] == 0 {
		t.Fatalf("expected hot counters missing from state: %v", base)
	}
	for i, state := range states[1:] {
		if len(state) != len(base) {
			t.Errorf("threads=%d: %d metrics, threads=1 has %d", widths[i+1], len(state), len(base))
		}
		for name, want := range base {
			if got := state[name]; got != want {
				t.Errorf("threads=%d: %s = %d, want %d (threads=1)", widths[i+1], name, got, want)
			}
		}
	}
}

// TestObsTraceCoversPipeline generates with the exact solver and tracing
// on, then validates the exported artifacts end to end: well-formed
// nesting and monotone timestamps, and spans covering all three phases
// plus the TAP search.
func TestObsTraceCoversPipeline(t *testing.T) {
	ds, err := datagen.Tiny(7, 900)
	if err != nil {
		t.Fatal(err)
	}
	cfg := obsTestConfig()
	cfg.Threads = 4
	cfg.Solver = SolverExact
	reg := obs.New()
	reg.EnableTracing(0)
	cfg.Obs = reg
	if _, err := Generate(ds.Rel, cfg); err != nil {
		t.Fatal(err)
	}

	var trace bytes.Buffer
	if err := reg.WriteTrace(&trace); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTrace(trace.Bytes()); err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	for _, span := range []string{
		`"run"`, `"phase/fd"`, `"phase/stats"`, `"phase/hypo"`, `"phase/tap"`,
		`"stats/pair"`, `"tap/bnb"`, `"engine/cube/build"`, `"hypo/eval"`,
	} {
		if !strings.Contains(trace.String(), span) {
			t.Errorf("trace missing span %s", span)
		}
	}

	var metrics bytes.Buffer
	if err := reg.WriteMetrics(&metrics); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateMetrics(metrics.Bytes()); err != nil {
		t.Fatalf("metrics do not validate: %v", err)
	}
	for _, name := range []string{
		"comparenb_tap_nodes_expanded_total",
		"comparenb_stats_perm_blocks_drawn_total",
		"comparenb_engine_cache_hits_total",
		"comparenb_phase_stats_seconds_count",
	} {
		if !strings.Contains(metrics.String(), name) {
			t.Errorf("metrics missing %s", name)
		}
	}
}

// TestObsInterruptedRunFlushes pins the satellite-2 contract at the
// library layer: a cancelled run marks the registry interrupted, and the
// artifacts flushed afterwards are valid and carry the marker.
func TestObsInterruptedRunFlushes(t *testing.T) {
	ds, err := datagen.Tiny(7, 900)
	if err != nil {
		t.Fatal(err)
	}
	cfg := obsTestConfig()
	reg := obs.New()
	reg.EnableTracing(0)
	cfg.Obs = reg
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GenerateContext(ctx, ds.Rel, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !reg.Interrupted() {
		t.Fatal("cancelled run did not mark the registry interrupted")
	}
	var trace, metrics bytes.Buffer
	if err := reg.WriteTrace(&trace); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTrace(trace.Bytes()); err != nil {
		t.Errorf("partial trace does not validate: %v", err)
	}
	if err := reg.WriteMetrics(&metrics); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateMetrics(metrics.Bytes()); err != nil {
		t.Errorf("partial metrics do not validate: %v", err)
	}
	if !strings.Contains(metrics.String(), "# interrupted") {
		t.Error("partial metrics missing the interrupted marker")
	}
}

// TestObsNoGoroutineLeak: the observability sink spawns nothing of its
// own, so an observed multi-threaded run must settle back to the
// pre-run goroutine count.
func TestObsNoGoroutineLeak(t *testing.T) {
	ds, err := datagen.Tiny(7, 900)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	cfg := obsTestConfig()
	cfg.Threads = 8
	reg := obs.New()
	reg.EnableTracing(0)
	cfg.Obs = reg
	if _, err := Generate(ds.Rel, cfg); err != nil {
		t.Fatal(err)
	}
	testutil.WaitGoroutinesSettle(t, before)
}

// TestObsHistogramsThreadInvariantBytes extends the byte-identity gate
// to the SLO histograms: at every worker width the phase timings land in
// populated log2 buckets (with a trace identity attached), yet every
// serialised artifact stays byte-identical to the width-1 run. Wall
// clocks vary run to run, so only bucket occupancy — never bucket
// values — is asserted.
func TestObsHistogramsThreadInvariantBytes(t *testing.T) {
	var baseIpynb, baseMD, baseHTML, baseRep []byte
	for _, threads := range []int{1, 2, 8} {
		cfg := obsTestConfig()
		cfg.Threads = threads
		reg := obs.New()
		reg.EnableTracing(0)
		reg.SetTraceID("4bf92f3577b34da6a3ce929d0e0e4736")
		cfg.Obs = reg
		ipynb, md, html, rep := renderAll(t, cfg)

		for _, name := range []string{"phase_stats", "run_total"} {
			tm := reg.Timing(name)
			if tm.Count() == 0 {
				t.Errorf("threads=%d: timing %s never observed", threads, name)
				continue
			}
			var occupied int64
			for _, c := range tm.Buckets() {
				occupied += c
			}
			if occupied != tm.Count() {
				t.Errorf("threads=%d: %s buckets hold %d observations, count says %d",
					threads, name, occupied, tm.Count())
			}
			if q := tm.Quantile(0.99); q <= 0 {
				t.Errorf("threads=%d: %s p99 = %v", threads, name, q)
			}
		}

		if threads == 1 {
			baseIpynb, baseMD, baseHTML, baseRep = ipynb, md, html, rep
			continue
		}
		for _, pair := range []struct {
			name      string
			base, got []byte
		}{
			{"ipynb", baseIpynb, ipynb},
			{"markdown", baseMD, md},
			{"html", baseHTML, html},
			{"report", baseRep, rep},
		} {
			if !bytes.Equal(pair.base, pair.got) {
				t.Errorf("threads=%d: %s differs from width-1 run with histograms armed", threads, pair.name)
			}
		}
	}
}
