package pipeline

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"

	"comparenb/internal/governor"
	"comparenb/internal/insight"
	obspkg "comparenb/internal/obs" // `obs` would shadow the observed-statistic locals below
	"comparenb/internal/sampling"
	"comparenb/internal/stats"
	"comparenb/internal/table"
)

// statOutcome is one raw permutation-test result awaiting FDR correction.
type statOutcome struct {
	key    insight.Key
	p      float64
	effect float64
}

// The stats phase reports its degradation through the run's obs registry
// rather than a side struct, so the run report and the metrics exposition
// read the same cells:
//
//	stats_pairs_shed          counter — Shed rung: pairs dropped untested
//	stats_perms_effective_min gauge   — smallest permutation count an
//	                                    early-stopped test used (0 = none)
//	stats_earlystop_engaged   gauge   — 1 when any job ran the
//	                                    early-stopping kernel

// permsShedCap returns the Shed rung's permutation cap: the fewest whole
// permutation blocks that can still reach significance at alpha (the
// smallest achievable permutation p-value is 1/(cap+1)), never more than
// the configured count. Shed keeps only the highest-priority pairs, so
// the few tests that do run must stay able to reject.
func permsShedCap(perms int, alpha float64) int {
	need := int(math.Ceil(1/alpha)) - 1
	blocks := (need + stats.PermBlock - 1) / stats.PermBlock
	if blocks < 1 {
		blocks = 1
	}
	c := blocks * stats.PermBlock
	if c > perms {
		c = perms
	}
	return c
}

// runStatTests executes the significance phase of Algorithm 1 line 3 with
// the §5.1 optimizations: per-attribute (optionally sampled) test
// relations, shared permutations across measures, global BH correction.
// It returns the significant insights (sig ≥ 1 − Alpha) and the number of
// candidate insights actually tested. Cancelling ctx aborts the phase at
// the next test checkpoint with ctx's error; a live ctx never changes
// the result.
//
// gov (nil = ungoverned) drives the phase's degradation ladder, asked
// once per (attribute, value pair) job: Full runs the byte-identical
// eager kernel; Degrade switches the job to the early-stopping kernel
// (stats.PValueEarlyStop); Shed additionally drops every job outside the
// top max(EpsT, 4) priority ranks and caps the survivors' permutations
// at permsShedCap. Priority is most-populated pair first — a pure
// function of the input, so which pairs Shed drops is deterministic even
// though *when* shedding starts depends on the wall clock.
func runStatTests(ctx context.Context, rel *table.Relation, cfg Config, gov *governor.Governor) (significant []insight.Insight, tested int, err error) {
	n := rel.NumCatAttrs()
	// Pre-draw the test relation(s). Random sampling shares one sample;
	// unbalanced sampling is per attribute (§5.1.2).
	samplerRNG := rand.New(rand.NewSource(jobSeed(cfg.Seed, -1)))
	testRels := make([]*table.Relation, n)
	switch cfg.Sampling {
	case sampling.Random:
		shared := sampling.RandomSample(rel, cfg.SampleFrac, samplerRNG)
		for a := range testRels {
			testRels[a] = shared
		}
	case sampling.Unbalanced:
		for a := range testRels {
			testRels[a] = sampling.UnbalancedSample(rel, a, cfg.SampleFrac, samplerRNG)
		}
	default:
		for a := range testRels {
			testRels[a] = rel
		}
	}

	// Enumerate the test jobs: one per (attribute, value pair).
	type pairJob struct {
		attr      int
		val, val2 int32
	}
	var jobs []pairJob
	for a := 0; a < n; a++ {
		pairs := enumeratePairs(testRels[a], a, cfg.MaxPairsPerAttr)
		for _, pr := range pairs {
			jobs = append(jobs, pairJob{attr: a, val: pr[0], val2: pr[1]})
		}
	}

	// Degradation-ladder bookkeeping, computed only when a ladder can
	// engage: the priority rank of each job (most-populated pair first,
	// ties by attr/val/val2 — a pure function of the input relations, so
	// Shed's victims are deterministic) and the Shed permutation cap.
	forced := cfg.forceStatsLevel != governor.Full
	var rank []int
	if gov != nil || forced {
		perAttr := make([]map[int32]int, n)
		for a := 0; a < n; a++ {
			c := make(map[int32]int)
			for _, code := range testRels[a].CatCol(a) {
				c[code]++
			}
			perAttr[a] = c
		}
		order := make([]int, len(jobs))
		for i := range order {
			order[i] = i
		}
		pop := make([]int, len(jobs))
		for ji, job := range jobs {
			pop[ji] = perAttr[job.attr][job.val] + perAttr[job.attr][job.val2]
		}
		sort.SliceStable(order, func(x, y int) bool {
			jx, jy := jobs[order[x]], jobs[order[y]]
			if pop[order[x]] != pop[order[y]] {
				return pop[order[x]] > pop[order[y]]
			}
			if jx.attr != jy.attr {
				return jx.attr < jy.attr
			}
			if jx.val != jy.val {
				return jx.val < jy.val
			}
			return jx.val2 < jy.val2
		})
		rank = make([]int, len(jobs))
		for pos, ji := range order {
			rank[ji] = pos
		}
	}
	minKeep := cfg.EpsT
	if minKeep < 4 {
		minKeep = 4
	}
	shedCap := permsShedCap(cfg.Perms, cfg.Alpha)

	outcomes := make([][]statOutcome, len(jobs))
	testedPer := make([]int, len(jobs))
	skipped := make([]bool, len(jobs))
	earlyPer := make([]bool, len(jobs))
	minPermsPer := make([]int, len(jobs))
	var done atomic.Int64
	inner := innerThreads(cfg.threads(), len(jobs))
	err = parallelForCtx(ctx, cfg.threads(), len(jobs), func(jctx context.Context, ji int) error {
		defer done.Add(1)
		sp := obspkg.StartSpan(jctx, "stats/pair")
		defer sp.End()
		job := jobs[ji]
		trel := testRels[job.attr]
		level := cfg.forceStatsLevel
		if level == governor.Full {
			level = gov.Admit(governor.Stats, int(done.Load()), len(jobs))
		} else {
			gov.Observe(governor.Stats, level)
		}
		if level == governor.Full {
			var jerr error
			outcomes[ji], testedPer[ji], jerr = testPair(jctx, trel, job.attr, job.val, job.val2, cfg, jobSeed(cfg.Seed, ji), inner)
			return jerr
		}
		if level == governor.Shed && rank[ji] >= minKeep {
			skipped[ji] = true
			return nil
		}
		capPerms := cfg.Perms
		if level == governor.Shed {
			capPerms = shedCap
		}
		earlyPer[ji] = true
		var jerr error
		outcomes[ji], testedPer[ji], minPermsPer[ji], jerr = testPairEarly(jctx, trel, job.attr, job.val, job.val2, cfg, jobSeed(cfg.Seed, ji), capPerms)
		return jerr
	})
	if err != nil {
		return nil, 0, err
	}

	pairsShed, minPerms := 0, 0
	earlyStopped := false
	var all []statOutcome
	for ji := range outcomes {
		all = append(all, outcomes[ji]...)
		tested += testedPer[ji]
		if skipped[ji] {
			pairsShed++
		}
		if earlyPer[ji] {
			earlyStopped = true
			if mp := minPermsPer[ji]; mp > 0 && (minPerms == 0 || mp < minPerms) {
				minPerms = mp
			}
		}
	}
	// Publish the degradation record; the run report reads these cells.
	reg := obspkg.FromContext(ctx)
	if pairsShed > 0 {
		reg.Counter("stats_pairs_shed").Add(int64(pairsShed))
	}
	reg.Gauge("stats_perms_effective_min").Set(int64(minPerms))
	if earlyStopped {
		reg.Gauge("stats_earlystop_engaged").Set(1)
	}

	// Benjamini–Hochberg correction (§5.1.1), applied within the families
	// selected by cfg.BHScope.
	families := make(map[int64][]int) // family id → indexes into all
	for i, o := range all {
		var fam int64
		switch cfg.BHScope {
		case BHGlobal:
			fam = 0
		case BHPerPair:
			fam = ((int64(o.key.Attr)<<20)|int64(o.key.Val))<<20 | int64(o.key.Val2)
		default: // BHPerAttribute
			fam = int64(o.key.Attr)
		}
		families[fam] = append(families[fam], i)
	}
	for _, idxs := range families {
		ps := make([]float64, len(idxs))
		for k, i := range idxs {
			ps[k] = all[i].p
		}
		qs := stats.BenjaminiHochberg(ps)
		for k, i := range idxs {
			o := all[i]
			if qs[k] <= cfg.Alpha {
				significant = append(significant, insight.Insight{
					Meas: o.key.Meas, Attr: o.key.Attr,
					Val: o.key.Val, Val2: o.key.Val2,
					Type:   o.key.Type,
					Sig:    1 - qs[k],
					Effect: o.effect,
				})
			}
		}
	}
	// Deterministic order regardless of scheduling.
	sort.Slice(significant, func(a, b int) bool { return lessKey(significant[a].Key(), significant[b].Key()) })
	return significant, tested, nil
}

func lessKey(a, b insight.Key) bool {
	if a.Attr != b.Attr {
		return a.Attr < b.Attr
	}
	if a.Meas != b.Meas {
		return a.Meas < b.Meas
	}
	if a.Val != b.Val {
		return a.Val < b.Val
	}
	if a.Val2 != b.Val2 {
		return a.Val2 < b.Val2
	}
	return a.Type < b.Type
}

// enumeratePairs lists the (val, val') code pairs of attribute a in
// deterministic (lexicographic) order, optionally keeping only the pairs
// among the maxPairs most populated values.
func enumeratePairs(rel *table.Relation, a int, maxPairs int) [][2]int32 {
	codes := rel.SortedDomain(a)
	if maxPairs > 0 {
		// Keep the most frequent values until the pair budget is met:
		// k values yield k(k−1)/2 pairs.
		counts := make(map[int32]int)
		for _, c := range rel.CatCol(a) {
			counts[c]++
		}
		k := len(codes)
		for k > 2 && k*(k-1)/2 > maxPairs {
			k--
		}
		sort.SliceStable(codes, func(i, j int) bool { return counts[codes[i]] > counts[codes[j]] })
		codes = codes[:k]
		dict := rel
		sort.Slice(codes, func(i, j int) bool { return dict.Value(a, codes[i]) < dict.Value(a, codes[j]) })
	}
	var out [][2]int32
	for i := 0; i < len(codes); i++ {
		for j := i + 1; j < len(codes); j++ {
			out = append(out, [2]int32{codes[i], codes[j]})
		}
	}
	return out
}

// testPair runs the permutation tests for every measure and insight type
// on one (attribute, val, val') pair, sharing the label permutations
// across measures whenever the pooled sides have identical sizes (they
// differ only when NaN cells were filtered). Permutations come from
// seeded block streams (seed derived from `seed` and the measure index),
// and the nperm resamples are split across `threads` workers — both are
// bit-identical for every thread count.
func testPair(ctx context.Context, rel *table.Relation, attr int, val, val2 int32, cfg Config, seed int64, threads int) ([]statOutcome, int, error) {
	col := rel.CatCol(attr)
	var xRows, yRows []int
	for i, c := range col {
		switch c {
		case val:
			xRows = append(xRows, i)
		case val2:
			yRows = append(yRows, i)
		}
	}
	if len(xRows) < cfg.MinSideRows || len(yRows) < cfg.MinSideRows {
		return nil, 0, nil
	}

	var out []statOutcome
	tested := 0
	var sharedPerm *stats.PairPerm
	sharedSides := [2]int{-1, -1}
	for m := 0; m < rel.NumMeasures(); m++ {
		mcol := rel.MeasCol(m)
		xs := gather(mcol, xRows)
		ys := gather(mcol, yRows)
		if len(xs) < cfg.MinSideRows || len(ys) < cfg.MinSideRows {
			continue
		}
		pooled := make([]float64, 0, len(xs)+len(ys))
		pooled = append(pooled, xs...)
		pooled = append(pooled, ys...)

		var pp *stats.PairPerm
		if sharedSides == [2]int{len(xs), len(ys)} {
			pp = sharedPerm
		} else {
			var err error
			pp, err = stats.NewPairPermSeededCtx(ctx, len(xs), len(ys), cfg.Perms, jobSeed(seed, m), threads)
			if err != nil {
				return nil, 0, err
			}
			sharedPerm, sharedSides = pp, [2]int{len(xs), len(ys)}
		}

		for _, typ := range cfg.insightTypes() {
			v, v2, effect, ok := orient(xs, ys, val, val2, typ)
			if !ok {
				continue
			}
			tested++
			_, p, err := pp.PValueThreadsCtx(ctx, pooled, typ.TestStat(), threads)
			if err != nil {
				return nil, 0, err
			}
			out = append(out, statOutcome{
				key:    insight.Key{Meas: m, Attr: attr, Val: v, Val2: v2, Type: typ},
				p:      p,
				effect: effect,
			})
		}
	}
	return out, tested, nil
}

// testPairEarly is testPair's budget-pressure variant: every (measure,
// type) test runs the early-stopping kernel (stats.PValueEarlyStop)
// capped at capPerms permutations instead of the eager shared-permutation
// kernel. Sharing is skipped — the early kernel draws its blocks lazily
// per test — so the outputs are not byte-identical to testPair's even
// when nothing truncates; the pipeline only selects this path once the
// governor has already declared the phase degraded, and records it.
// minPerms is the smallest permutation count any test here actually
// evaluated (0 when the pair produced no tests).
func testPairEarly(ctx context.Context, rel *table.Relation, attr int, val, val2 int32, cfg Config, seed int64, capPerms int) ([]statOutcome, int, int, error) {
	col := rel.CatCol(attr)
	var xRows, yRows []int
	for i, c := range col {
		switch c {
		case val:
			xRows = append(xRows, i)
		case val2:
			yRows = append(yRows, i)
		}
	}
	if len(xRows) < cfg.MinSideRows || len(yRows) < cfg.MinSideRows {
		return nil, 0, 0, nil
	}

	var out []statOutcome
	tested, minPerms := 0, 0
	for m := 0; m < rel.NumMeasures(); m++ {
		mcol := rel.MeasCol(m)
		xs := gather(mcol, xRows)
		ys := gather(mcol, yRows)
		if len(xs) < cfg.MinSideRows || len(ys) < cfg.MinSideRows {
			continue
		}
		pooled := make([]float64, 0, len(xs)+len(ys))
		pooled = append(pooled, xs...)
		pooled = append(pooled, ys...)
		for _, typ := range cfg.insightTypes() {
			v, v2, effect, ok := orient(xs, ys, val, val2, typ)
			if !ok {
				continue
			}
			tested++
			_, p, used, err := stats.PValueEarlyStop(ctx, len(xs), len(ys), capPerms, jobSeed(seed, m), pooled, typ.TestStat(), cfg.Alpha)
			if err != nil {
				return nil, 0, 0, err
			}
			if minPerms == 0 || used < minPerms {
				minPerms = used
			}
			out = append(out, statOutcome{
				key:    insight.Key{Meas: m, Attr: attr, Val: v, Val2: v2, Type: typ},
				p:      p,
				effect: effect,
			})
		}
	}
	return out, tested, minPerms, nil
}

// orient decides the insight direction from the observed statistics:
// (val, val') such that val's statistic is strictly greater, plus the
// observed effect size (Cohen's d for mean/median, variance ratio for
// variance). ok=false when the statistics tie or are undefined.
func orient(xs, ys []float64, val, val2 int32, typ insight.Type) (int32, int32, float64, bool) {
	var sx, sy float64
	switch typ {
	case insight.MeanGreater:
		sx, sy = stats.Mean(xs), stats.Mean(ys)
	case insight.VarianceGreater:
		sx, sy = stats.PopVariance(xs), stats.PopVariance(ys)
	case insight.MedianGreater:
		sx, sy = stats.Median(xs), stats.Median(ys)
	}
	if math.IsNaN(sx) || math.IsNaN(sy) || stats.ApproxEqual(sx, sy, stats.Tol) {
		return 0, 0, 0, false
	}
	var effect float64
	switch typ {
	case insight.MeanGreater, insight.MedianGreater:
		nx, ny := float64(len(xs)), float64(len(ys))
		pooled := math.Sqrt((nx*stats.PopVariance(xs) + ny*stats.PopVariance(ys)) / (nx + ny))
		if pooled > 0 {
			effect = math.Abs(sx-sy) / pooled
		}
	case insight.VarianceGreater:
		lo := math.Min(sx, sy)
		if lo > 0 {
			effect = math.Max(sx, sy) / lo
		}
	}
	if sx > sy {
		return val, val2, effect, true
	}
	return val2, val, effect, true
}

func gather(col []float64, rows []int) []float64 {
	out := make([]float64, 0, len(rows))
	for _, r := range rows {
		if v := col[r]; !math.IsNaN(v) {
			out = append(out, v)
		}
	}
	return out
}
