package pipeline

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"comparenb/internal/table"
)

// goldenRelation is a fixed dataset for the rendering regression test: no
// RNG, so the whole pipeline output is reproducible byte for byte.
func goldenRelation() *table.Relation {
	b := table.NewBuilder("shop", []string{"region", "product", "channel"}, []string{"sales"})
	regions := []string{"north", "south", "east"}
	products := []string{"widget", "gadget"}
	channels := []string{"web", "store"}
	for i := 0; i < 480; i++ {
		r := regions[i%3]
		p := products[i%2]
		c := channels[(i/3)%2]
		v := float64(100 + (i%3)*50 + (i%2)*20 + i%7)
		b.AddRow([]string{r, p, c}, []float64{v})
	}
	return b.Build()
}

// TestGoldenNotebook locks the end-to-end Markdown rendering of a small
// deterministic run. Regenerate with UPDATE_GOLDEN=1 go test ./internal/pipeline
// after an intentional change, and review the diff like any other code.
func TestGoldenNotebook(t *testing.T) {
	cfg := NewConfig()
	cfg.Perms = 200
	cfg.Seed = 42
	cfg.Threads = 1
	cfg.EpsT = 3
	cfg.EpsD = 2
	res, err := Generate(goldenRelation(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	nb := BuildNotebook(res)
	var buf bytes.Buffer
	if err := nb.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	goldenPath := filepath.Join("testdata", "notebook_golden.md")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file updated: %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run UPDATE_GOLDEN=1 go test once): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("notebook rendering changed (got %d bytes, want %d).\n"+
			"If intentional: UPDATE_GOLDEN=1 go test ./internal/pipeline\nFirst divergence:\n%s",
			len(got), len(want), firstDiff(got, want))
	}
}

func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			hi := i + 80
			if hi > n {
				hi = n
			}
			return "got:  …" + string(a[lo:hi]) + "…\nwant: …" + string(b[lo:hi]) + "…"
		}
	}
	return "(one output is a prefix of the other)"
}
