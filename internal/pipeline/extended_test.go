package pipeline

import (
	"strings"
	"testing"

	"comparenb/internal/insight"
)

// TestExtendedInsightTypes exercises the §7 extension: enabling the
// median-greater type must test more insights and can only add findings.
func TestExtendedInsightTypes(t *testing.T) {
	ds := tinyDataset(t)
	base := testConfig()
	plain, err := Generate(ds.Rel, base)
	if err != nil {
		t.Fatal(err)
	}
	ext := base
	ext.InsightTypes = insight.ExtendedTypes
	extended, err := Generate(ds.Rel, ext)
	if err != nil {
		t.Fatal(err)
	}
	if extended.Counts.InsightsEnumerated <= plain.Counts.InsightsEnumerated {
		t.Errorf("extended tested %d insights, plain %d — median type not enumerated",
			extended.Counts.InsightsEnumerated, plain.Counts.InsightsEnumerated)
	}
	var medians int
	for _, ins := range extended.Insights {
		if ins.Type == insight.MedianGreater {
			medians++
		}
	}
	if medians == 0 {
		t.Error("no median-greater insights found despite strong planted mean shifts")
	}
	for _, ins := range plain.Insights {
		if ins.Type == insight.MedianGreater {
			t.Fatal("default configuration produced a median insight")
		}
	}
}

func TestMedianHypothesisSQL(t *testing.T) {
	ds := tinyDataset(t)
	cfg := testConfig()
	cfg.InsightTypes = insight.ExtendedTypes
	res, err := Generate(ds.Rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sq := range res.Queries {
		for _, ins := range sq.Supported {
			if ins.Type != insight.MedianGreater {
				continue
			}
			sql := HypothesisSQL(ds.Rel, sq, ins)
			if !strings.Contains(sql, "percentile_cont(0.5)") ||
				!strings.Contains(sql, "'median greater' as hypothesis") {
				t.Fatalf("median hypothesis SQL malformed:\n%s", sql)
			}
			return
		}
	}
	t.Skip("no supported median insight in this run")
}
