package pipeline

import (
	"bytes"
	"testing"

	"comparenb/internal/datagen"
)

// TestPipelineNoCompressByteIdentical is the pipeline-level half of the
// encoded kernels' differential gate: on a dataset large enough that every
// cube build runs on the encoded path, a NoCompress run must produce
// byte-identical notebooks and reports (modulo the recorded flag itself
// and the compression stats, which exist exactly to record the path).
func TestPipelineNoCompressByteIdentical(t *testing.T) {
	ds, err := datagen.ENEDISLike(11, 4000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewConfig()
	cfg.Perms = 80
	cfg.Seed = 11
	cfg.Threads = 2
	cfg.EpsT = 5
	cfg.EpsD = 1.5

	run := func(noCompress bool) (ipynb, md []byte, rep Report) {
		cfg.NoCompress = noCompress
		res, err := Generate(ds.Rel, cfg)
		if err != nil {
			t.Fatal(err)
		}
		nb := BuildNotebook(res)
		var bufI, bufM bytes.Buffer
		if err := nb.WriteIPYNB(&bufI); err != nil {
			t.Fatal(err)
		}
		if err := nb.WriteMarkdown(&bufM); err != nil {
			t.Fatal(err)
		}
		rep = res.Report()
		return bufI.Bytes(), bufM.Bytes(), rep
	}

	ipynbEnc, mdEnc, repEnc := run(false)
	ipynbRaw, mdRaw, repRaw := run(true)

	if len(ipynbEnc) == 0 {
		t.Fatal("encoded run produced no notebook")
	}
	if !bytes.Equal(ipynbEnc, ipynbRaw) {
		t.Errorf("ipynb differs between encoded and NoCompress runs (%d vs %d bytes)", len(ipynbEnc), len(ipynbRaw))
	}
	if !bytes.Equal(mdEnc, mdRaw) {
		t.Errorf("markdown differs between encoded and NoCompress runs (%d vs %d bytes)", len(mdEnc), len(mdRaw))
	}

	// The runs must agree on every analytical fact; only the recorded
	// configuration and the compression section may differ.
	if len(repEnc.Compression) == 0 {
		t.Error("encoded run reported no per-column compression stats")
	}
	if len(repRaw.Compression) != 0 {
		t.Errorf("NoCompress run reported %d compression entries, want none", len(repRaw.Compression))
	}
	if !repRaw.Config.NoCompress || repEnc.Config.NoCompress {
		t.Error("reports do not record the NoCompress flag faithfully")
	}
	repEnc.Compression, repRaw.Compression = nil, nil
	repEnc.Config.NoCompress, repRaw.Config.NoCompress = false, false
	repEnc.Timings, repRaw.Timings = ReportTimings{}, ReportTimings{}
	var a, b bytes.Buffer
	if err := repEnc.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := repRaw.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("normalised reports differ between encoded and NoCompress runs:\n%s\nvs\n%s", a.String(), b.String())
	}
}
