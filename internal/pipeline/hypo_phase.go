package pipeline

import (
	"context"
	"math/rand"
	"sort"

	"comparenb/internal/cover"
	"comparenb/internal/engine"
	"comparenb/internal/governor"
	"comparenb/internal/insight"
	"comparenb/internal/metric"
	"comparenb/internal/obs"
	"comparenb/internal/table"
)

// ScoredQuery is a comparison query retained in Q, with the insights it
// evidences and its §4.2 interestingness.
type ScoredQuery struct {
	Query    insight.Query
	Interest float64
	// Theta is θ_q (tuples aggregated), Gamma is γ_q (groups in the
	// result) — the conciseness inputs.
	Theta, Gamma int
	// Supported are the insights this query supports, with final
	// significance and credibility.
	Supported []insight.Insight
}

// hypoOutcome is the per-(insight, grouping attribute) evaluation result.
type hypoOutcome struct {
	supportedAggs []engine.Agg
	// avgSupports records whether the canonical hypothesis query (agg =
	// avg) supports the insight — the Def. 3.11 credibility unit.
	avgSupports  bool
	theta, gamma int
}

// hypoCandidateCap returns the degradation ladder's cap on the number of
// significant insights the hypothesis phase evaluates (0 = uncapped).
// Both rungs keep enough candidates to fill an EpsT-query notebook with
// headroom for dedup; Shed keeps the bare minimum.
func hypoCandidateCap(level governor.Level, epsT int) int {
	switch level {
	case governor.Degrade:
		c := 2 * epsT
		if c < 16 {
			c = 16
		}
		return c
	case governor.Shed:
		c := epsT
		if c < 4 {
			c = 4
		}
		return c
	default:
		return 0
	}
}

// capCandidates keeps the top-k insights by (significance desc, key asc)
// while preserving the input's deterministic key order, returning the
// kept slice and the number dropped. The selection is a pure function of
// the insight list, so a capped run is reproducible even though *whether*
// capping engaged depended on the wall clock.
func capCandidates(sig []insight.Insight, k int) ([]insight.Insight, int) {
	if k <= 0 || len(sig) <= k {
		return sig, 0
	}
	order := make([]int, len(sig))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		a, b := sig[order[x]], sig[order[y]]
		if a.Sig > b.Sig {
			return true
		}
		if a.Sig < b.Sig {
			return false
		}
		return lessKey(a.Key(), b.Key())
	})
	keep := make([]bool, len(sig))
	for _, i := range order[:k] {
		keep[i] = true
	}
	kept := make([]insight.Insight, 0, k)
	for i, ins := range sig {
		if keep[i] {
			kept = append(kept, ins)
		}
	}
	return kept, len(sig) - k
}

// evalHypotheses runs lines 5–17 of Algorithm 1 with the §5.2
// optimizations: it evaluates hypothesis queries from in-memory partial
// aggregates (bounded 2-group-bys, or Algorithm 2's merged group-by sets
// when cfg.UseWSC), computes credibility, scores interest, and applies the
// same-insights dedup. Support is always checked on the full relation —
// sampling only ever accelerates the statistical tests. Cancelling ctx
// aborts the phase at the next cube or job checkpoint with ctx's error;
// a live ctx never changes the result.
//
// gov (nil = ungoverned) drives the phase's degradation ladder, asked
// once on entry: under pressure the candidate set is capped to the
// hypoCandidateCap top insights (the hypo_candidates_dropped counter
// reports how many were cut) — a whole-phase decision rather than
// per-job, because each candidate's cost is dominated by cube
// availability, which is shared.
func evalHypotheses(ctx context.Context, rel *table.Relation, cfg Config, fds *engine.FDSet, sig []insight.Insight, cache *engine.CubeCache, gov *governor.Governor) ([]ScoredQuery, []insight.Insight, Counts, error) {
	var counts Counts
	n := rel.NumCatAttrs()
	reg := obs.FromContext(ctx)

	level := cfg.forceHypoLevel
	if level == governor.Full {
		level = gov.Admit(governor.Hypo, 0, 0)
	} else {
		gov.Observe(governor.Hypo, level)
	}
	sig, dropped := capCandidates(sig, hypoCandidateCap(level, cfg.EpsT))
	if dropped > 0 {
		reg.Counter("hypo_candidates_dropped").Add(int64(dropped))
	}

	// Valid grouping attributes per selection attribute (FD pre-pruning).
	validA := make([][]int, n)
	for b := 0; b < n; b++ {
		for a := 0; a < n; a++ {
			if a != b && !fds.MeaninglessPair(a, b) {
				validA[b] = append(validA[b], a)
			}
		}
	}

	// Needed 2-group-by sets.
	pairSet := map[cover.Pair]bool{}
	for _, ins := range sig {
		for _, a := range validA[ins.Attr] {
			pairSet[cover.NewPair(a, ins.Attr)] = true
		}
	}
	var needed []cover.Pair
	for p := range pairSet {
		needed = append(needed, p)
	}
	sort.Slice(needed, func(i, j int) bool {
		if needed[i].A != needed[j].A {
			return needed[i].A < needed[j].A
		}
		return needed[i].B < needed[j].B
	})

	pairCubes, err := buildPairCubes(ctx, rel, cfg, needed, cache)
	if err != nil {
		return nil, nil, counts, err
	}

	// Evaluate every (insight, grouping attribute) combination.
	type job struct {
		insIdx int
		attrA  int
	}
	var jobs []job
	for ii, ins := range sig {
		for _, a := range validA[ins.Attr] {
			jobs = append(jobs, job{insIdx: ii, attrA: a})
		}
	}
	results := make([]hypoOutcome, len(jobs))
	err = parallelForCtx(ctx, cfg.threads(), len(jobs), func(jctx context.Context, ji int) error {
		sp := obs.StartSpan(jctx, "hypo/eval")
		defer sp.End()
		j := jobs[ji]
		ins := sig[j.insIdx]
		pc := pairCubes[cover.NewPair(j.attrA, ins.Attr)]
		results[ji] = evalOne(rel, pc, j.attrA, ins)
		return nil
	})
	if err != nil {
		return nil, nil, counts, err
	}
	counts.SupportChecks = len(jobs) * len(engine.AllAggs)
	reg.Counter("hypo_support_checks").Add(int64(counts.SupportChecks))

	// Credibility per insight (Def. 3.11): one hypothesis query per
	// grouping attribute (canonical agg = avg), or the ∃agg ablation.
	credOf := make([]int, len(sig))
	for ji, j := range jobs {
		supports := results[ji].avgSupports
		if cfg.CredibilityAggExists {
			supports = len(results[ji].supportedAggs) > 0
		}
		if supports {
			credOf[j.insIdx]++
		}
	}
	final := make([]insight.Insight, len(sig))
	for i, ins := range sig {
		ins.Credibility = credOf[i]
		ins.NumHypo = len(validA[ins.Attr])
		final[i] = ins
	}

	// Assemble queries: one per (A, B, val, val', M, agg) that supports at
	// least one insight.
	type qacc struct {
		theta, gamma int
		supported    []insight.Insight
	}
	accum := map[insight.Query]*qacc{}
	for ji, j := range jobs {
		ins := final[j.insIdx]
		for _, agg := range results[ji].supportedAggs {
			q := insight.Query{
				GroupBy: j.attrA, Attr: ins.Attr,
				Val: ins.Val, Val2: ins.Val2,
				Meas: ins.Meas, Agg: agg,
			}
			acc := accum[q]
			if acc == nil {
				acc = &qacc{theta: results[ji].theta, gamma: results[ji].gamma}
				accum[q] = acc
			}
			acc.supported = append(acc.supported, ins)
		}
	}

	// Optionally calibrate conciseness on the observed candidates before
	// scoring (Config.AutoConciseness).
	if cfg.AutoConciseness && cfg.Interest.UseConciseness {
		// Iterate accum in sorted query order so calibration sees the same
		// sample sequence every run (map order is randomised).
		qs := make([]insight.Query, 0, len(accum))
		for q := range accum {
			qs = append(qs, q)
		}
		sort.Slice(qs, func(a, b int) bool { return lessQuery(qs[a], qs[b]) })
		samples := make([]metric.ThetaGamma, 0, len(qs))
		for _, q := range qs {
			samples = append(samples, metric.ThetaGamma{Theta: accum[q].theta, Gamma: accum[q].gamma})
		}
		cfg.Interest.Conciseness = metric.CalibrateConciseness(samples)
		cfg.logf("pipeline: calibrated conciseness α=%.4f δ=%.1f from %d candidates",
			cfg.Interest.Conciseness.Alpha, cfg.Interest.Conciseness.Delta, len(samples))
	}

	// Score and dedup (Algorithm 1 lines 14–17): among queries equal up to
	// the grouping attribute, keep the most interesting.
	type dedupKey struct {
		attr      int
		val, val2 int32
		meas      int
		agg       engine.Agg
	}
	best := map[dedupKey]ScoredQuery{}
	for q, acc := range accum {
		sort.Slice(acc.supported, func(a, b int) bool { return lessKey(acc.supported[a].Key(), acc.supported[b].Key()) })
		sq := ScoredQuery{
			Query:     q,
			Theta:     acc.theta,
			Gamma:     acc.gamma,
			Supported: acc.supported,
			Interest:  metric.Interest(acc.theta, acc.gamma, acc.supported, cfg.Interest),
		}
		k := dedupKey{attr: q.Attr, val: q.Val, val2: q.Val2, meas: q.Meas, agg: q.Agg}
		cur, ok := best[k]
		// Exact float equality is the point here: the tie-break must pick
		// the same winner regardless of map iteration order.
		if !ok || sq.Interest > cur.Interest ||
			(sq.Interest == cur.Interest && q.GroupBy < cur.Query.GroupBy) { //nolint:floateq // deterministic tie-break
			best[k] = sq
		}
	}
	queries := make([]ScoredQuery, 0, len(best))
	for _, sq := range best {
		queries = append(queries, sq)
	}
	sort.Slice(queries, func(a, b int) bool { return lessQuery(queries[a].Query, queries[b].Query) })
	counts.QueriesGenerated = len(queries)
	reg.Counter("hypo_queries_generated").Add(int64(counts.QueriesGenerated))
	return queries, final, counts, nil
}

func lessQuery(a, b insight.Query) bool {
	if a.Attr != b.Attr {
		return a.Attr < b.Attr
	}
	if a.Val != b.Val {
		return a.Val < b.Val
	}
	if a.Val2 != b.Val2 {
		return a.Val2 < b.Val2
	}
	if a.Meas != b.Meas {
		return a.Meas < b.Meas
	}
	if a.GroupBy != b.GroupBy {
		return a.GroupBy < b.GroupBy
	}
	return a.Agg < b.Agg
}

// evalOne evaluates all hypothesis queries for one insight and one
// grouping attribute: which aggregates' comparison queries support the
// insight, plus the conciseness inputs θ and γ.
func evalOne(rel *table.Relation, pc *engine.Cube, attrA int, ins insight.Insight) hypoOutcome {
	var out hypoOutcome
	// θ: tuples with B ∈ {val, val'} — from the pair cube's counts.
	// AttrAt avoids Attrs()'s defensive clone on this hot path.
	posB := 0
	if pc.AttrAt(1) == ins.Attr {
		posB = 1
	}
	for g := 0; g < pc.NumGroups(); g++ {
		if b := pc.GroupKey(g)[posB]; b == ins.Val || b == ins.Val2 {
			out.theta += int(pc.Count(g))
		}
	}
	for _, agg := range engine.AllAggs {
		res := engine.CompareFromCube(pc, attrA, ins.Attr, ins.Val, ins.Val2, ins.Meas, agg)
		out.gamma = res.Len()
		if insight.Supports(res, ins.Type) {
			out.supportedAggs = append(out.supportedAggs, agg)
			if agg == engine.Avg {
				out.avgSupports = true
			}
		}
	}
	return out
}

// buildPairCubes materialises a cube for every needed {A, B} pair through
// the run's cube cache, either directly (§5.2.1 bounding) or by rolling up
// the group-by sets chosen by Algorithm 2's weighted set cover (§5.2.2).
// The cache's counters record how many cubes were aggregated from the base
// relation (misses) versus answered by reuse or roll-up.
func buildPairCubes(ctx context.Context, rel *table.Relation, cfg Config, needed []cover.Pair, cache *engine.CubeCache) (map[cover.Pair]*engine.Cube, error) {
	out := make(map[cover.Pair]*engine.Cube, len(needed))
	if len(needed) == 0 {
		return out, nil
	}
	if !cfg.UseWSC {
		inner := innerThreads(cfg.threads(), len(needed))
		cubes := make([]*engine.Cube, len(needed))
		err := parallelForCtx(ctx, cfg.threads(), len(needed), func(jctx context.Context, i int) error {
			var cerr error
			cubes[i], cerr = cache.GetOrBuildCtx(jctx, rel, []int{needed[i].A, needed[i].B}, inner)
			return cerr
		})
		if err != nil {
			return nil, err
		}
		for i, p := range needed {
			out[p] = cubes[i]
		}
		return out, nil
	}

	// Algorithm 2: estimate candidate sizes, solve the weighted cover.
	cands := cover.EnumerateCandidates(rel.NumCatAttrs(), cfg.MaxCoverSize)
	rowBytes := float64(8 + 4 + 3*8*rel.NumMeasures())
	estRNG := rand.New(rand.NewSource(jobSeed(cfg.Seed, -2)))
	sampleSize := rel.NumRows()
	if sampleSize > 4096 {
		sampleSize = 4096
	}
	for i := range cands {
		groups := engine.EstimateGroups(rel, cands[i].Attrs, sampleSize, estRNG)
		cands[i].Weight = groups * rowBytes * float64(len(cands[i].Attrs))
	}
	chosen, err := cover.Greedy(needed, cands)
	fallback := err != nil
	// Planning budget: the §5.2.2 MemoryBudget, tightened by the hard
	// MemBudget when both are set — a cover the admission layer would
	// refuse to cache anyway is not worth building.
	planBudget := cfg.MemoryBudget
	if cfg.MemBudget > 0 && (planBudget <= 0 || cfg.MemBudget < planBudget) {
		planBudget = cfg.MemBudget
	}
	if !fallback && planBudget > 0 && cover.TotalWeight(cands, chosen) > float64(planBudget) {
		// §5.2.2 fallback: load the smallest possible aggregates instead.
		fallback = true
	}
	if fallback {
		cfgNoWSC := cfg
		cfgNoWSC.UseWSC = false
		return buildPairCubes(ctx, rel, cfgNoWSC, needed, cache)
	}

	// Base cubes of the cover always aggregate the relation directly
	// (BuildThrough never answers via roll-up), so their provenance does
	// not depend on what else the cache holds.
	inner := innerThreads(cfg.threads(), len(chosen))
	err = parallelForCtx(ctx, cfg.threads(), len(chosen), func(jctx context.Context, i int) error {
		_, berr := cache.BuildThroughCtx(jctx, rel, cands[chosen[i]].Attrs, inner)
		return berr
	})
	if err != nil {
		return nil, err
	}
	// Every needed pair now rolls up from a cached base cube; GetOrBuild
	// picks the cheapest covering superset deterministically. cover.Greedy
	// guarantees coverage, so no pair falls back to a base-relation build.
	rolled := make([]*engine.Cube, len(needed))
	err = parallelForCtx(ctx, cfg.threads(), len(needed), func(jctx context.Context, pi int) error {
		p := needed[pi]
		var gerr error
		rolled[pi], gerr = cache.GetOrBuildCtx(jctx, rel, []int{p.A, p.B}, 1)
		return gerr
	})
	if err != nil {
		return nil, err
	}
	for pi, p := range needed {
		out[p] = rolled[pi]
	}
	return out, nil
}
