package pipeline

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"comparenb/internal/faultinject"
	"comparenb/internal/tap"
	"comparenb/internal/testutil"
)

// budgetConfig mirrors the golden test's deterministic configuration but
// with the exact solver, so the anytime ladder is on the hot path.
func budgetConfig(threads int) Config {
	cfg := NewConfig()
	cfg.Perms = 200
	cfg.Seed = 42
	cfg.Threads = threads
	cfg.EpsT = 3
	cfg.EpsD = 2
	cfg.Solver = SolverExact
	return cfg
}

func renderMarkdown(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := BuildNotebook(res).WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// reportJSON serialises the run report with the wall-clock-dependent
// fields zeroed, so two runs of the same configuration compare equal.
func reportJSON(t *testing.T, res *Result) []byte {
	t.Helper()
	rep := res.Report()
	rep.Timings = ReportTimings{}
	rep.Config.TimeBudgetMillis = 0
	rep.Config.MemBudgetBytes = 0
	// The recorded thread count legitimately differs between runs; what
	// must not differ is everything computed.
	rep.Config.Threads = 0
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGenerateGenerousBudgetByteIdentical is the acceptance check for the
// soft budgets: a TimeBudget the run never exhausts — with the governor
// splitting it across every phase — and a MemBudget the cache never hits
// must change nothing: notebook and report bytes equal the unbudgeted
// run's at every thread count, and every thread count agrees with serial.
func TestGenerateGenerousBudgetByteIdentical(t *testing.T) {
	rel := goldenRelation()
	var refNB, refRep []byte
	for _, threads := range []int{1, 2, 8} {
		plain, err := Generate(rel, budgetConfig(threads))
		if err != nil {
			t.Fatalf("threads=%d unbudgeted: %v", threads, err)
		}
		cfg := budgetConfig(threads)
		cfg.TimeBudget = time.Hour
		cfg.MemBudget = 1 << 33
		budgeted, err := GenerateContext(context.Background(), rel, cfg)
		if err != nil {
			t.Fatalf("threads=%d budgeted: %v", threads, err)
		}
		if budgeted.TAP.Degraded {
			t.Fatalf("threads=%d: one-hour budget degraded the solver", threads)
		}
		if budgeted.Degraded.Any() {
			t.Fatalf("threads=%d: generous budgets recorded degradation %+v", threads, budgeted.Degraded)
		}
		if budgeted.TAP.Solver != tap.AnytimeExact {
			t.Fatalf("threads=%d: solver = %q, want %q", threads, budgeted.TAP.Solver, tap.AnytimeExact)
		}
		nbPlain, nbBudget := renderMarkdown(t, plain), renderMarkdown(t, budgeted)
		if !bytes.Equal(nbPlain, nbBudget) {
			t.Errorf("threads=%d: budgeted notebook differs from unbudgeted", threads)
		}
		repPlain, repBudget := reportJSON(t, plain), reportJSON(t, budgeted)
		if !bytes.Equal(repPlain, repBudget) {
			t.Errorf("threads=%d: budgeted report differs from unbudgeted", threads)
		}
		if threads == 1 {
			refNB, refRep = nbPlain, repPlain
			continue
		}
		if !bytes.Equal(nbPlain, refNB) {
			t.Errorf("threads=%d: notebook differs from serial run", threads)
		}
		if !bytes.Equal(repPlain, refRep) {
			t.Errorf("threads=%d: report differs from serial run", threads)
		}
	}
}

// TestReportBudgetFieldsOmittedWhenUnbudgeted locks the serialisation
// contract: reports from unbudgeted, non-degraded runs must not mention
// the budget machinery at all.
func TestReportBudgetFieldsOmittedWhenUnbudgeted(t *testing.T) {
	res, err := Generate(goldenRelation(), budgetConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Report().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		"time_budget_ms", "tap_solver", "tap_degraded", "tap_gap",
		"mem_budget", "phase_degraded", "perms_effective", "pairs_skipped",
		"hypo_dropped", "mem_evictions", "admit_evictions", "admit_refusals",
	} {
		if strings.Contains(buf.String(), field) {
			t.Errorf("unbudgeted report contains %q:\n%s", field, buf.String())
		}
	}
}

// TestGenerateTightBudgetDegradesFeasibly drives the whole pipeline with a
// budget that is already spent when TAP starts: the run must still finish,
// hand back a feasible notebook from a heuristic rung, and say so in the
// report.
func TestGenerateTightBudgetDegradesFeasibly(t *testing.T) {
	cfg := budgetConfig(2)
	cfg.TimeBudget = time.Nanosecond
	res, err := GenerateContext(context.Background(), goldenRelation(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TAP.Degraded {
		t.Fatalf("nanosecond budget did not degrade: %+v", res.TAP)
	}
	if res.TAP.Solver != tap.AnytimeIncumbent2Opt && res.TAP.Solver != tap.AnytimeGreedy2Opt {
		t.Errorf("degraded solver = %q, want a heuristic rung", res.TAP.Solver)
	}
	if res.ExactStats == nil || !res.ExactStats.TimedOut {
		t.Errorf("exact stats should record the timeout: %+v", res.ExactStats)
	}
	if res.TAP.Gap < 0 || res.TAP.Gap != res.TAP.Gap {
		t.Errorf("degraded gap = %v, want a finite non-negative bound", res.TAP.Gap)
	}
	inst := Instance(res.Queries, cfg.Weights)
	if err := inst.Feasible(res.Solution, float64(cfg.EpsT), cfg.EpsD); err != nil {
		t.Errorf("degraded solution infeasible: %v", err)
	}
	if nb := renderMarkdown(t, res); len(nb) == 0 {
		t.Error("degraded run rendered an empty notebook")
	}

	rep := res.Report()
	if !rep.TAPDegraded || rep.TAPSolver != res.TAP.Solver {
		t.Errorf("report does not name the degradation: solver=%q degraded=%v", rep.TAPSolver, rep.TAPDegraded)
	}
	if rep.TAPGap == nil || *rep.TAPGap != res.TAP.Gap {
		t.Errorf("report gap %v != outcome gap %v", rep.TAPGap, res.TAP.Gap)
	}
	if rep.Config.TimeBudgetMillis <= 0 {
		t.Errorf("report omits the configured budget: %v", rep.Config.TimeBudgetMillis)
	}
	var js map[string]any
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &js); err != nil {
		t.Fatal(err)
	}
	if js["tap_solver"] != res.TAP.Solver {
		t.Errorf("serialised tap_solver = %v, want %q", js["tap_solver"], res.TAP.Solver)
	}
}

// checkCancelledRun asserts the hard-cancellation contract: ctx's error
// comes back, no partial Result escapes, and every worker goroutine
// drains (testutil.WaitGoroutinesSettle is the shared leak check).
func checkCancelledRun(t *testing.T, res *Result, err error, before int) {
	t.Helper()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run returned a partial Result")
	}
	testutil.WaitGoroutinesSettle(t, before)
}

func TestGenerateContextPreCancelled(t *testing.T) {
	ds := tinyDataset(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := runtime.NumGoroutine()
	res, err := GenerateContext(ctx, ds.Rel, testConfig())
	checkCancelledRun(t, res, err, before)
}

func TestGenerateContextCancelMidStats(t *testing.T) {
	ds := tinyDataset(t)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	defer faultinject.Set(faultinject.StatsPermEval, faultinject.OnCall(3, cancel))()
	res, err := GenerateContext(ctx, ds.Rel, testConfig())
	checkCancelledRun(t, res, err, before)
}

func TestGenerateContextCancelMidCubeBuild(t *testing.T) {
	ds := tinyDataset(t)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	defer faultinject.Set(faultinject.EngineCubeShard, faultinject.OnCall(1, cancel))()
	res, err := GenerateContext(ctx, ds.Rel, testConfig())
	checkCancelledRun(t, res, err, before)
}

func TestGenerateContextCancelMidSearch(t *testing.T) {
	ds := tinyDataset(t)
	cfg := testConfig()
	cfg.Solver = SolverExact
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	defer faultinject.Set(faultinject.TapSearchTick, faultinject.OnCall(1, cancel))()
	res, err := GenerateContext(ctx, ds.Rel, cfg)
	checkCancelledRun(t, res, err, before)
}

func TestValidateRejectsNegativeTimeBudget(t *testing.T) {
	cfg := testConfig()
	cfg.TimeBudget = -time.Second
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "TimeBudget") {
		t.Errorf("Validate(-1s budget) = %v, want TimeBudget error", err)
	}
}
