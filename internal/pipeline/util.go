package pipeline

import (
	"context"
	"sync"

	"comparenb/internal/obs"
)

// parallelForCtx runs fn(0..n-1) on up to `threads` goroutines. It is
// the worker pool behind the two parallel phases of Figure 8. fn must be
// safe to call concurrently; job order is unspecified but, absent
// cancellation or error, the set is exactly 0..n-1.
//
// The ctx handed to fn is the worker's: on the serial path it is the
// caller's ctx (same goroutine, same trace track), on the parallel path
// each worker forks its own trace track so spans opened inside fn never
// interleave with another worker's on one track. With tracing disabled
// the fork is free and the worker ctx is the caller's.
//
// Cancellation is cooperative: every worker polls ctx before each job,
// so a job that has started runs to completion and no phase output is
// ever half-written, and a cancelled run returns ctx's error. When some
// fn calls return errors with a live context, every job still runs and
// the error with the smallest index is reported — deterministic
// regardless of goroutine scheduling.
func parallelForCtx(ctx context.Context, threads, n int, fn func(ctx context.Context, i int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	if threads <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return ctx.Err()
	}
	if threads > n {
		threads = n
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(threads)
	for w := 0; w < threads; w++ {
		go func() {
			defer wg.Done()
			wctx := obs.ForkTrack(ctx, "worker")
			// Keep draining `next` after cancellation so the sender never
			// blocks; skipped jobs simply do not run.
			for i := range next {
				if wctx.Err() != nil {
					continue
				}
				errs[i] = fn(wctx, i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// innerThreads splits a thread budget between an outer job pool of `jobs`
// jobs and the parallel kernels each job may call: when there are fewer
// jobs than threads the spare width goes to the kernels, otherwise the
// kernels run serially. Inner width never changes results — the sharded
// cube build and the permutation kernels are bit-identical at any thread
// count — so this is purely a utilisation knob.
func innerThreads(threads, jobs int) int {
	if jobs <= 0 {
		return threads
	}
	inner := threads / jobs
	if inner < 1 {
		inner = 1
	}
	return inner
}

// jobSeed derives a deterministic per-job RNG seed so results do not
// depend on goroutine scheduling.
func jobSeed(base int64, job int) int64 {
	z := uint64(base) + uint64(job+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & 0x7FFFFFFFFFFFFFFF)
}
