package pipeline

import "sync"

// parallelFor runs fn(0..n-1) on up to `threads` goroutines. It is the
// worker pool behind the two parallel phases of Figure 8. fn must be safe
// to call concurrently; job order is unspecified but the set is exactly
// 0..n-1.
func parallelFor(threads, n int, fn func(i int)) {
	if n == 0 {
		return
	}
	if threads <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if threads > n {
		threads = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(threads)
	for w := 0; w < threads; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// innerThreads splits a thread budget between an outer job pool of `jobs`
// jobs and the parallel kernels each job may call: when there are fewer
// jobs than threads the spare width goes to the kernels, otherwise the
// kernels run serially. Inner width never changes results — the sharded
// cube build and the permutation kernels are bit-identical at any thread
// count — so this is purely a utilisation knob.
func innerThreads(threads, jobs int) int {
	if jobs <= 0 {
		return threads
	}
	inner := threads / jobs
	if inner < 1 {
		inner = 1
	}
	return inner
}

// jobSeed derives a deterministic per-job RNG seed so results do not
// depend on goroutine scheduling.
func jobSeed(base int64, job int) int64 {
	z := uint64(base) + uint64(job+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & 0x7FFFFFFFFFFFFFFF)
}
