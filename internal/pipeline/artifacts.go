package pipeline

import (
	"bytes"
	"fmt"
	"io"

	"comparenb/internal/obs"
)

// Artifact is one rendered representation of a finished run — the unit
// the serving layer stores, journals and recovers. Key names the format
// (ipynb, markdown, html, report, trace, metrics); ContentType is the
// HTTP content type the bytes should be served under.
type Artifact struct {
	Key         string
	ContentType string
	Data        []byte
}

// artifactContentTypes maps every artifact key to its content type. The
// mapping is part of the recovery contract: a restarted server rebuilds
// content types from keys alone, so journal records only carry hashes.
var artifactContentTypes = map[string]string{
	"ipynb":    "application/x-ipynb+json",
	"markdown": "text/markdown; charset=utf-8",
	"html":     "text/html; charset=utf-8",
	"report":   "application/json",
	"trace":    "application/json",
	"metrics":  "text/plain; version=0.0.4",
}

// ArtifactContentType returns the content type for an artifact key, or
// false for unknown keys (a journal from a newer version, say).
func ArtifactContentType(key string) (string, bool) {
	ct, ok := artifactContentTypes[key]
	return ct, ok
}

// ArtifactKeys lists the artifact formats a run renders, in render order.
func ArtifactKeys() []string {
	return []string{"ipynb", "markdown", "html", "report", "trace", "metrics"}
}

// RenderArtifacts materialises every served representation of a finished
// run, in ArtifactKeys order. Trace and metrics render last so the
// notebook's verification queries are already on the books in reg. The
// bytes are the same a one-shot CLI run would write — the serving and
// durability layers must store and recover them unchanged.
func RenderArtifacts(res *Result, reg *obs.Registry) ([]Artifact, error) {
	nb := BuildNotebook(res)
	renders := []struct {
		key   string
		write func(io.Writer) error
	}{
		{"ipynb", nb.WriteIPYNB},
		{"markdown", nb.WriteMarkdown},
		{"html", nb.WriteHTML},
		{"report", res.Report().WriteJSON},
		{"trace", reg.WriteTrace},
		{"metrics", reg.WriteMetrics},
	}
	out := make([]Artifact, 0, len(renders))
	for _, r := range renders {
		var buf bytes.Buffer
		if err := r.write(&buf); err != nil {
			return nil, fmt.Errorf("rendering %s: %w", r.key, err)
		}
		out = append(out, Artifact{Key: r.key, ContentType: artifactContentTypes[r.key], Data: buf.Bytes()})
	}
	return out, nil
}
