package pipeline

import (
	"bytes"
	"testing"

	"comparenb/internal/datagen"
)

// renderAll runs the full generate→notebook pipeline once and returns
// every serialised artifact: the ipynb, the Markdown, the HTML and the
// JSON run report.
func renderAll(t *testing.T, cfg Config) (ipynb, md, html, report []byte) {
	t.Helper()
	ds, err := datagen.Tiny(7, 900)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Generate(ds.Rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nb := BuildNotebook(res)
	var bufIpynb, bufMD, bufHTML, bufReport bytes.Buffer
	if err := nb.WriteIPYNB(&bufIpynb); err != nil {
		t.Fatal(err)
	}
	if err := nb.WriteMarkdown(&bufMD); err != nil {
		t.Fatal(err)
	}
	if err := nb.WriteHTML(&bufHTML); err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	rep.Timings = ReportTimings{} // wall-clock timings legitimately differ
	if err := rep.WriteJSON(&bufReport); err != nil {
		t.Fatal(err)
	}
	return bufIpynb.Bytes(), bufMD.Bytes(), bufHTML.Bytes(), bufReport.Bytes()
}

// TestPipelineDeterminism is the contract the maporder analyzer exists to
// protect: two full pipeline runs on the same seeded dataset must produce
// byte-identical notebooks in every output format — with a multi-threaded
// worker pool and the auto-calibration paths enabled, so both parallel
// scheduling and map-iteration nondeterminism would be caught here.
func TestPipelineDeterminism(t *testing.T) {
	cfg := NewConfig()
	cfg.Perms = 150
	cfg.Seed = 7
	cfg.Threads = 4
	cfg.EpsT = 5
	cfg.EpsD = 1.5
	cfg.AutoConciseness = true
	cfg.Interest.UseConciseness = true
	cfg.IncludeHypotheses = true

	ipynb1, md1, html1, rep1 := renderAll(t, cfg)
	ipynb2, md2, html2, rep2 := renderAll(t, cfg)

	check := func(name string, a, b []byte) {
		t.Helper()
		if len(a) == 0 {
			t.Fatalf("%s: first run produced no output", name)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between two runs on the same seed (%d vs %d bytes)", name, len(a), len(b))
		}
	}
	check("ipynb", ipynb1, ipynb2)
	check("markdown", md1, md2)
	check("html", html1, html2)
	check("report", rep1, rep2)
}

// TestPipelineDeterminismAcrossThreadCounts pins the stronger property the
// per-job seeding (jobSeed) promises: the notebook does not depend on the
// worker-pool width either.
func TestPipelineDeterminismAcrossThreadCounts(t *testing.T) {
	cfg := NewConfig()
	cfg.Perms = 150
	cfg.Seed = 7
	cfg.EpsT = 5
	cfg.EpsD = 1.5

	cfg.Threads = 1
	ipynb1, _, _, _ := renderAll(t, cfg)
	cfg.Threads = 8
	ipynb8, _, _, _ := renderAll(t, cfg)
	if !bytes.Equal(ipynb1, ipynb8) {
		t.Errorf("ipynb differs between Threads=1 and Threads=8 (%d vs %d bytes)", len(ipynb1), len(ipynb8))
	}
}
