package pipeline

import (
	"bytes"
	"testing"

	"comparenb/internal/datagen"
)

// renderAll runs the full generate→notebook pipeline once and returns
// every serialised artifact: the ipynb, the Markdown, the HTML and the
// JSON run report.
func renderAll(t *testing.T, cfg Config) (ipynb, md, html, report []byte) {
	t.Helper()
	ds, err := datagen.Tiny(7, 900)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Generate(ds.Rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nb := BuildNotebook(res)
	var bufIpynb, bufMD, bufHTML, bufReport bytes.Buffer
	if err := nb.WriteIPYNB(&bufIpynb); err != nil {
		t.Fatal(err)
	}
	if err := nb.WriteMarkdown(&bufMD); err != nil {
		t.Fatal(err)
	}
	if err := nb.WriteHTML(&bufHTML); err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	rep.Timings = ReportTimings{} // wall-clock timings legitimately differ
	rep.Config.Threads = 0        // recorded worker width, not content
	if err := rep.WriteJSON(&bufReport); err != nil {
		t.Fatal(err)
	}
	return bufIpynb.Bytes(), bufMD.Bytes(), bufHTML.Bytes(), bufReport.Bytes()
}

// TestPipelineDeterminism is the contract the maporder analyzer exists to
// protect: two full pipeline runs on the same seeded dataset must produce
// byte-identical notebooks in every output format — with a multi-threaded
// worker pool and the auto-calibration paths enabled, so both parallel
// scheduling and map-iteration nondeterminism would be caught here.
func TestPipelineDeterminism(t *testing.T) {
	cfg := NewConfig()
	cfg.Perms = 150
	cfg.Seed = 7
	cfg.Threads = 4
	cfg.EpsT = 5
	cfg.EpsD = 1.5
	cfg.AutoConciseness = true
	cfg.Interest.UseConciseness = true
	cfg.IncludeHypotheses = true

	ipynb1, md1, html1, rep1 := renderAll(t, cfg)
	ipynb2, md2, html2, rep2 := renderAll(t, cfg)

	check := func(name string, a, b []byte) {
		t.Helper()
		if len(a) == 0 {
			t.Fatalf("%s: first run produced no output", name)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between two runs on the same seed (%d vs %d bytes)", name, len(a), len(b))
		}
	}
	check("ipynb", ipynb1, ipynb2)
	check("markdown", md1, md2)
	check("html", html1, html2)
	check("report", rep1, rep2)
}

// TestPipelineDeterminismAcrossThreadCounts pins the stronger property the
// per-job seeding (jobSeed), the sharded cube build and the block-seeded
// permutation streams promise together: every output format is
// byte-identical no matter how wide the worker pools run.
func TestPipelineDeterminismAcrossThreadCounts(t *testing.T) {
	cfg := NewConfig()
	cfg.Perms = 150
	cfg.Seed = 7
	cfg.EpsT = 5
	cfg.EpsD = 1.5

	cfg.Threads = 1
	ipynb1, md1, _, rep1 := renderAll(t, cfg)
	for _, threads := range []int{2, 8} {
		cfg.Threads = threads
		ipynb, md, _, rep := renderAll(t, cfg)
		if !bytes.Equal(ipynb1, ipynb) {
			t.Errorf("ipynb differs between Threads=1 and Threads=%d (%d vs %d bytes)", threads, len(ipynb1), len(ipynb))
		}
		if !bytes.Equal(md1, md) {
			t.Errorf("markdown differs between Threads=1 and Threads=%d (%d vs %d bytes)", threads, len(md1), len(md))
		}
		if !bytes.Equal(rep1, rep) {
			t.Errorf("report differs between Threads=1 and Threads=%d (%d vs %d bytes)", threads, len(rep1), len(rep))
		}
	}
}

// TestPipelineCacheCounters checks the run's cube cache is actually doing
// the sharing the design promises: a standard run records hits or rollups,
// and an unbounded budget never evicts.
func TestPipelineCacheCounters(t *testing.T) {
	cfg := NewConfig()
	cfg.Perms = 100
	cfg.Seed = 7
	cfg.EpsT = 5
	cfg.UseWSC = true       // the sharing path under test
	cfg.CubeCacheBudget = 0 // unbounded

	ds, err := datagen.Tiny(7, 900)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Generate(ds.Rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cs := res.CacheStats()
	if cs.Misses == 0 {
		t.Error("no cube was ever built from the base relation")
	}
	if cs.Hits+cs.RollupHits == 0 {
		t.Error("cache recorded no reuse at all across the phases")
	}
	if cs.Evictions != 0 {
		t.Errorf("unbounded cache evicted %d entries", cs.Evictions)
	}
	if res.Counts.CacheMisses != int(cs.Misses) || res.Counts.CubesBuilt != int(cs.Misses) {
		t.Errorf("Counts (%d built / %d misses) disagree with cache stats (%d)",
			res.Counts.CubesBuilt, res.Counts.CacheMisses, cs.Misses)
	}
	// BuildNotebook's verification tables answer from the same cache.
	before := cs.Hits + cs.RollupHits
	BuildNotebook(res)
	after := res.CacheStats()
	if after.Hits+after.RollupHits <= before {
		t.Error("notebook verification queries did not touch the cache")
	}
	if after.Misses != cs.Misses {
		t.Errorf("notebook rendering rebuilt cubes from the relation: misses %d -> %d", cs.Misses, after.Misses)
	}
}
