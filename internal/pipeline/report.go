package pipeline

import (
	"encoding/json"
	"io"
	"time"
)

// Report is a machine-readable summary of a generation run, for tooling
// and regression tracking. Build one with Result.Report and serialise it
// with WriteJSON.
type Report struct {
	Dataset  string          `json:"dataset"`
	Rows     int             `json:"rows"`
	Config   ReportConfig    `json:"config"`
	Counts   Counts          `json:"counts"`
	Timings  ReportTimings   `json:"timings"`
	Insights []ReportInsight `json:"insights"`
	Notebook []ReportQuery   `json:"notebook"`

	// Compression reports the per-column encodings of the dataset's
	// compressed view, when the run built one (absent for small datasets
	// and under NoCompress — keeping those reports byte-identical to
	// pre-compression runs).
	Compression []ReportColumnCompression `json:"compression,omitempty"`
	// TAP solution quality.
	TotalInterest float64 `json:"total_interest"`
	TotalDistance float64 `json:"total_distance"`
	ExactOptimal  *bool   `json:"exact_optimal,omitempty"`
	// Degradation record: present only when the time budget expired and
	// the anytime ladder answered with a heuristic rung, so unbudgeted
	// (and generously budgeted) runs serialise byte-identically to
	// reports written before TimeBudget existed.
	TAPSolver   string `json:"tap_solver,omitempty"`
	TAPDegraded bool   `json:"tap_degraded,omitempty"`
	// TAPGap is a pointer so a certified zero gap still serialises on
	// degraded runs.
	TAPGap *float64 `json:"tap_gap,omitempty"`
	// Per-phase degradation record (Result.Degraded). All omitempty for
	// the same reason as the TAP fields: a run that conceded nothing
	// serialises byte-identically to one from before the governor existed.
	PhaseDegraded  []string `json:"phase_degraded,omitempty"`
	PermsEffective int      `json:"perms_effective,omitempty"`
	PairsSkipped   int      `json:"pairs_skipped,omitempty"`
	HypoDropped    int      `json:"hypo_dropped,omitempty"`
	MemEvictions   int      `json:"mem_evictions,omitempty"`
}

// ReportConfig is the subset of Config worth recording.
type ReportConfig struct {
	Name       string  `json:"name"`
	Sampling   string  `json:"sampling"`
	SampleFrac float64 `json:"sample_frac,omitempty"`
	Perms      int     `json:"perms"`
	Alpha      float64 `json:"alpha"`
	BHScope    string  `json:"bh_scope"`
	EpsT       int     `json:"eps_t"`
	EpsD       float64 `json:"eps_d"`
	Solver     string  `json:"solver"`
	UseWSC     bool    `json:"use_wsc"`
	Threads    int     `json:"threads"`
	// CacheBudget is the cube-cache bound in bytes (<= 0 = unbounded).
	CacheBudget int64 `json:"cube_cache_budget"`
	Seed        int64 `json:"seed"`
	// TimeBudgetMillis is the soft wall-clock budget (omitted when the
	// run was unbudgeted).
	TimeBudgetMillis float64 `json:"time_budget_ms,omitempty"`
	// MemBudgetBytes is the hard cube-cache memory budget (omitted when
	// disarmed).
	MemBudgetBytes int64 `json:"mem_budget,omitempty"`

	// NoCompress records that the compressed columnar layer was disabled.
	NoCompress bool `json:"no_compress,omitempty"`
}

// ReportColumnCompression is one column of the encoded relation: which
// encoding the one-pass scan picked and what it bought.
type ReportColumnCompression struct {
	Name         string  `json:"name"`
	Kind         string  `json:"kind"`
	Encoding     string  `json:"encoding"`
	RawBytes     int     `json:"raw_bytes"`
	EncodedBytes int     `json:"encoded_bytes"`
	Ratio        float64 `json:"ratio"`
}

// ReportTimings is Timings in milliseconds for JSON friendliness.
type ReportTimings struct {
	FDMillis    float64 `json:"fd_ms"`
	StatsMillis float64 `json:"stat_tests_ms"`
	HypoMillis  float64 `json:"hypo_eval_ms"`
	TAPMillis   float64 `json:"tap_ms"`
	TotalMillis float64 `json:"total_ms"`
}

// ReportInsight is one significant insight in human/JSON form.
type ReportInsight struct {
	Measure     string  `json:"measure"`
	Attribute   string  `json:"attribute"`
	Val         string  `json:"val"`
	Val2        string  `json:"val2"`
	Type        string  `json:"type"`
	Sig         float64 `json:"sig"`
	Effect      float64 `json:"effect"`
	Credibility int     `json:"credibility"`
	NumHypo     int     `json:"num_hypo"`
}

// ReportQuery is one notebook step.
type ReportQuery struct {
	Step     int     `json:"step"`
	GroupBy  string  `json:"group_by"`
	Attr     string  `json:"attr"`
	Val      string  `json:"val"`
	Val2     string  `json:"val2"`
	Measure  string  `json:"measure"`
	Agg      string  `json:"agg"`
	Interest float64 `json:"interest"`
	Insights int     `json:"insights"`
	SQL      string  `json:"sql"`
}

// Report builds the summary.
func (r *Result) Report() Report {
	rel := r.Relation
	rep := Report{
		Dataset: rel.Name(),
		Rows:    rel.NumRows(),
		Config: ReportConfig{
			Name:        r.Config.Name,
			Sampling:    r.Config.Sampling.String(),
			SampleFrac:  r.Config.SampleFrac,
			Perms:       r.Config.Perms,
			Alpha:       r.Config.Alpha,
			BHScope:     r.Config.BHScope.String(),
			EpsT:        r.Config.EpsT,
			EpsD:        r.Config.EpsD,
			Solver:      r.Config.Solver.String(),
			UseWSC:      r.Config.UseWSC,
			Threads:     r.Config.threads(),
			CacheBudget: r.Config.CubeCacheBudget,
			Seed:        r.Config.Seed,
		},
		Counts:        r.Counts,
		Timings:       toReportTimings(r.Timings),
		TotalInterest: r.Solution.TotalInterest,
		TotalDistance: r.Solution.TotalDist,
	}
	if r.Config.TimeBudget > 0 {
		rep.Config.TimeBudgetMillis = float64(r.Config.TimeBudget) / float64(time.Millisecond)
	}
	if r.ExactStats != nil {
		opt := r.ExactStats.Certified
		rep.ExactOptimal = &opt
	}
	if r.Config.MemBudget > 0 {
		rep.Config.MemBudgetBytes = r.Config.MemBudget
	}
	rep.Config.NoCompress = r.Config.NoCompress
	// Gate on the flag, not just the cached view: the relation may carry an
	// encoding built by an earlier, compressed run, but this run never
	// touched it.
	if enc := rel.EncodedCached(); enc != nil && !r.Config.NoCompress {
		for _, cs := range enc.ColumnStats() {
			rep.Compression = append(rep.Compression, ReportColumnCompression{
				Name:         cs.Name,
				Kind:         cs.Kind,
				Encoding:     cs.Encoding,
				RawBytes:     cs.RawBytes,
				EncodedBytes: cs.EncodedBytes,
				Ratio:        cs.Ratio,
			})
		}
	}
	if r.TAP.Degraded {
		rep.TAPSolver = r.TAP.Solver
		rep.TAPDegraded = true
		gap := r.TAP.Gap
		rep.TAPGap = &gap
	}
	if r.Degraded.Any() {
		rep.PhaseDegraded = r.Degraded.Phases
		rep.PermsEffective = r.Degraded.PermsEffective
		rep.PairsSkipped = r.Degraded.PairsSkipped
		rep.HypoDropped = r.Degraded.HypoDropped
		rep.MemEvictions = r.Degraded.MemEvictions
	}
	for _, ins := range r.Insights {
		rep.Insights = append(rep.Insights, ReportInsight{
			Measure:     rel.MeasName(ins.Meas),
			Attribute:   rel.CatName(ins.Attr),
			Val:         rel.Value(ins.Attr, ins.Val),
			Val2:        rel.Value(ins.Attr, ins.Val2),
			Type:        ins.Type.String(),
			Sig:         ins.Sig,
			Effect:      ins.Effect,
			Credibility: ins.Credibility,
			NumHypo:     ins.NumHypo,
		})
	}
	for i, sq := range r.Sequence() {
		q := sq.Query
		rep.Notebook = append(rep.Notebook, ReportQuery{
			Step:     i + 1,
			GroupBy:  rel.CatName(q.GroupBy),
			Attr:     rel.CatName(q.Attr),
			Val:      rel.Value(q.Attr, q.Val),
			Val2:     rel.Value(q.Attr, q.Val2),
			Measure:  rel.MeasName(q.Meas),
			Agg:      q.Agg.String(),
			Interest: sq.Interest,
			Insights: len(sq.Supported),
			SQL:      ComparisonSQL(rel, q),
		})
	}
	return rep
}

// WriteJSON writes the report as indented JSON.
func (rep Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func toReportTimings(t Timings) ReportTimings {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return ReportTimings{
		FDMillis:    ms(t.FD),
		StatsMillis: ms(t.StatTests),
		HypoMillis:  ms(t.HypoEval),
		TAPMillis:   ms(t.TAP),
		TotalMillis: ms(t.Total),
	}
}
