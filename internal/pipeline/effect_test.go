package pipeline

import (
	"math"
	"testing"

	"comparenb/internal/insight"
	"comparenb/internal/table"
)

// TestEffectSizesRecorded: a dataset with one huge and one moderate mean
// gap must yield effect sizes ordering accordingly.
func TestEffectSizesRecorded(t *testing.T) {
	b := table.NewBuilder("fx", []string{"g", "h", "k"}, []string{"m"})
	for i := 0; i < 900; i++ {
		g := []string{"low", "mid", "high"}[i%3]
		level := map[string]float64{"low": 0, "mid": 12, "high": 100}[g]
		noise := float64(i%17) - 8
		b.AddRow([]string{g,
			string(rune('a' + i%4)),
			string(rune('a' + i%2)),
		}, []float64{level + noise})
	}
	res, err := Generate(b.Build(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var dLowHigh, dLowMid float64
	for _, ins := range res.Insights {
		if ins.Attr != 0 || ins.Type != insight.MeanGreater {
			continue
		}
		rel := res.Relation
		v := rel.Value(0, ins.Val)
		v2 := rel.Value(0, ins.Val2)
		switch {
		case v == "high" && v2 == "low":
			dLowHigh = ins.Effect
		case v == "mid" && v2 == "low":
			dLowMid = ins.Effect
		}
	}
	// Transitivity pruning may remove high>low (deducible via mid); in
	// that case compare high>mid instead.
	if dLowHigh == 0 {
		for _, ins := range res.Insights {
			rel := res.Relation
			if ins.Attr == 0 && ins.Type == insight.MeanGreater &&
				rel.Value(0, ins.Val) == "high" && rel.Value(0, ins.Val2) == "mid" {
				dLowHigh = ins.Effect
			}
		}
	}
	if dLowMid == 0 || dLowHigh == 0 {
		t.Fatalf("expected mean insights missing; got %+v", res.Insights)
	}
	if !(dLowHigh > dLowMid) {
		t.Errorf("effect ordering wrong: big gap d=%v, moderate gap d=%v", dLowHigh, dLowMid)
	}
	if dLowMid < 0.5 {
		t.Errorf("moderate gap effect %v implausibly small (12 points over sd≈5)", dLowMid)
	}
	for _, ins := range res.Insights {
		if ins.Effect < 0 || math.IsNaN(ins.Effect) {
			t.Errorf("bad effect size: %+v", ins)
		}
		if ins.Type == insight.VarianceGreater && ins.Effect != 0 && ins.Effect < 1 {
			t.Errorf("variance ratio below 1: %+v", ins)
		}
	}
}
