// Package pipeline orchestrates comparison-notebook generation end to end:
// Algorithm 1 (insight testing + comparison-query generation) with the §5
// optimizations — shared permutations with BH correction, offline
// sampling, the §5.2.1 query bounding, Algorithm 2's group-by merging,
// multi-threading — followed by TAP solving and notebook assembly. The
// five implementations of Table 3 (plus the user-study variants of
// Table 7) are presets over one Config.
package pipeline

import (
	"fmt"
	"runtime"
	"time"

	"comparenb/internal/engine"
	"comparenb/internal/governor"
	"comparenb/internal/insight"
	"comparenb/internal/metric"
	"comparenb/internal/obs"
	"comparenb/internal/sampling"
)

// BHScope is the family grouping for the FDR correction.
type BHScope int

const (
	// BHPerPair corrects within each (attribute, val, val') family — the
	// measures × types tested together on the same shared permutations.
	// This is the default and the most textual reading of §5.1.1 ("we use
	// the same permutations to check all possible insights on different
	// measures ... and correct the p-values"): the correction applies to
	// the batch that shares permutations. It is intentionally permissive;
	// the spurious insights it admits under aggressive sampling are
	// exactly the >100%-insights effect the paper reports in Figure 9,
	// and §6.3.4 points at the credibility component to keep them in
	// check.
	BHPerPair BHScope = iota
	// BHPerAttribute corrects within each categorical attribute's tests.
	// Stricter; mind the permutation floor — a family of N tests can only
	// produce discoveries when ≈ N·Alpha⁻¹-scaled counts of tests sit at
	// the 1/(Perms+1) floor.
	BHPerAttribute
	// BHGlobal corrects across every test of the run (most conservative).
	BHGlobal
)

func (s BHScope) String() string {
	switch s {
	case BHPerAttribute:
		return "per-attribute"
	case BHGlobal:
		return "global"
	case BHPerPair:
		return "per-pair"
	default:
		return "BHScope(?)"
	}
}

// SolverKind selects how the TAP is solved.
type SolverKind int

const (
	// SolverHeuristic is Algorithm 3 (sort by item efficiency).
	SolverHeuristic SolverKind = iota
	// SolverExact is the branch-and-bound CPLEX stand-in.
	SolverExact
	// SolverTopK is the §6.4 baseline: top ε_t queries by interest.
	SolverTopK
	// SolverHeuristicPlus is Algorithm 3 followed by 2-opt local search
	// and re-insertion (an extension; never worse than SolverHeuristic).
	SolverHeuristicPlus
)

func (s SolverKind) String() string {
	switch s {
	case SolverHeuristic:
		return "heuristic"
	case SolverExact:
		return "exact"
	case SolverTopK:
		return "topk"
	case SolverHeuristicPlus:
		return "heuristic+2opt"
	default:
		return "SolverKind(?)"
	}
}

// Config controls a notebook-generation run. NewConfig supplies defaults;
// the preset constructors below reproduce the paper's implementations.
type Config struct {
	// Name labels the configuration in reports (e.g. "WSC-unb-approx").
	Name string

	// Sampling strategy and fraction for the statistical tests (§5.1.2).
	Sampling   sampling.Strategy
	SampleFrac float64

	// Perms is the permutation count per test; Alpha the FDR level: an
	// insight is significant when its BH-adjusted p ≤ Alpha, i.e.
	// sig(i) ≥ 1 − Alpha (the paper's sig(i) ≥ 0.95).
	Perms int
	Alpha float64
	// BHScope selects the family the Benjamini–Hochberg correction is
	// applied within (default: per test batch sharing permutations, i.e.
	// per (attribute, val, val') pair — see the BHScope constants for the
	// §5.1.1 reading and the stricter ablations).
	BHScope BHScope

	// MinSideRows skips degenerate tests whose either side has fewer rows.
	MinSideRows int
	// MaxPairsPerAttr caps the (val, val') pairs tested per attribute,
	// taking the most populated values first (0 = all pairs). A scale
	// valve for attributes with huge active domains.
	MaxPairsPerAttr int

	// Interest and Weights parameterise §4.2.
	Interest metric.InterestParams
	Weights  metric.Weights

	// Threads bounds worker-pool width for the two parallel phases of
	// Figure 8 (≤ 0 means GOMAXPROCS).
	Threads int

	// UseWSC enables Algorithm 2's group-by merging; MaxCoverSize caps the
	// candidate group-by set size; MemoryBudget (bytes, 0 = unlimited) is
	// the in-memory budget — when the chosen cover would exceed it, the
	// §5.2.2 fallback loads the smallest aggregates (the 2-group-bys).
	UseWSC       bool
	MaxCoverSize int
	MemoryBudget int64

	// CubeCacheBudget bounds the run's partial-aggregate cache (bytes of
	// cube footprint, <= 0 = unbounded). The cache is shared by Algorithm
	// 2's set cover, the hypothesis phase and the notebook's verification
	// queries: exact attribute sets are reused, subset group-bys are
	// answered by rolling up a cached superset instead of rescanning the
	// base relation. See docs/PERFORMANCE.md for keying and eviction.
	CubeCacheBudget int64

	// AutoConciseness calibrates the conciseness parameters α, δ from the
	// observed (θ, γ) of the candidate queries instead of using
	// Interest.Conciseness — automating the paper's "empirically tuned"
	// setting (see metric.CalibrateConciseness).
	AutoConciseness bool

	// FDMaxError is the g3 error tolerated when detecting functional
	// dependencies in pre-processing (0 = exact FDs only). A small value
	// (e.g. 0.01) lets a few dirty rows not defeat the degenerate-query
	// pruning of footnote 2.
	FDMaxError float64

	// DisableTransitivePruning keeps deducible insights (ablation).
	DisableTransitivePruning bool

	// InsightTypes selects the insight types tested (nil = the paper's
	// mean-greater and variance-greater). insight.ExtendedTypes adds the
	// median-greater extension of §7.
	InsightTypes []insight.Type

	// CredibilityAggExists switches credibility to count a grouping
	// attribute as supporting when ANY aggregate's comparison supports the
	// insight. The default (false) follows Def. 3.11's |Qⁱ| = n−1: one
	// canonical hypothesis query per grouping attribute, using agg = avg
	// (the series of group averages). The ∃agg reading makes credibility
	// saturate — nearly every attribute has some agreeing aggregate — and
	// is kept as an ablation.
	CredibilityAggExists bool

	// TAP parameters: ε_t (number of queries — §4.2's uniform cost), ε_d,
	// the solver, and the exact solver's timeout.
	EpsT         int
	EpsD         float64
	Solver       SolverKind
	ExactTimeout time.Duration

	// TimeBudget is a soft wall-clock budget for the whole run (0 = none).
	// The analysis phases run to completion; whatever remains of the budget
	// when the TAP starts becomes the exact solver's deadline, and on
	// expiry the anytime ladder degrades to a heuristic solution
	// (Result.TAP records which rung answered and the optimality gap). The
	// budget is the discipline the paper gets from CPLEX's time-limit
	// parameter: a notebook always comes back, only its optimality
	// certificate is sacrificed. A budget the run never exhausts changes
	// nothing — outputs stay byte-identical to an unbudgeted run. Hard
	// cancellation (abandon the run, produce nothing) is GenerateContext's
	// ctx instead.
	TimeBudget time.Duration

	// MemBudget is a hard in-memory budget (bytes of cube footprint,
	// 0 = none) enforced at cube-cache admission time. It is distinct
	// from MemoryBudget (the §5.2.2 planning budget, which only steers
	// the WSC cover choice) and from CubeCacheBudget (a soft bound,
	// enforced only by phase-boundary Trims): with MemBudget armed the
	// cache never holds more than this many bytes at any instant —
	// entries are evicted largest-first to admit new builds, and a cube
	// too large to ever fit is simply not cached (the query is still
	// answered from the freshly built cube, so the run completes; it just
	// loses reuse). Admission actions are recorded in the run report
	// (mem_evictions), because mid-phase eviction makes cache contents
	// scheduling-dependent — byte-identity across thread counts is only
	// guaranteed while the budget is never hit. When both MemoryBudget
	// and MemBudget are set, WSC planning respects the smaller.
	MemBudget int64

	// Cache, when set, is an externally owned cube cache shared across
	// runs — the serving-path configuration (internal/server hands every
	// job the daemon's cache). The run uses it instead of creating a
	// private one: lookups may be answered by cubes built by earlier runs
	// over the same *Relation (exact hits, or distributive roll-ups that
	// are bit-identical to a fresh build), so notebook bytes are unchanged
	// while repeated requests skip the base-relation scans. Ownership
	// stays with the caller: Generate neither re-Instruments the cache nor
	// touches its budgets or encoding mode (CubeCacheBudget, MemBudget and
	// NoCompress only configure a private cache), and the run's cache
	// Counts become deltas of the shared counters over the run — exact
	// when the cache serves one run at a time, approximate attribution
	// under concurrency. Phase-boundary Trims still run, against the
	// cache's own budget.
	Cache *engine.CubeCache

	// NoCompress disables the compressed columnar storage layer: every
	// cube builds from raw float64/int32 columns instead of the encoded
	// kernels. Outputs are bit-identical either way — the flag exists to
	// measure the encoding's effect and as an escape hatch, and is
	// recorded in the run report when set.
	NoCompress bool

	// IncludeHypotheses adds, after each notebook query, a code cell with
	// the hypothesis query (Figure 3 form) for each insight the query
	// evidences — so a skeptical reader can re-check support in SQL.
	IncludeHypotheses bool

	// Logf, when set, receives one line per pipeline phase (FD detection,
	// statistical tests, hypothesis evaluation, TAP) with counts and
	// durations. Useful for long runs; nil disables logging.
	Logf func(format string, args ...any)

	// Obs, when set, is the run's observability registry: spans, counters
	// and timing histograms land there and the caller exports them after
	// the run (trace JSON, metrics exposition, stderr summary — see
	// docs/OBSERVABILITY.md). The registry is run-scoped: pass a fresh
	// obs.New() per Generate call, or leave nil and the pipeline creates
	// a private one (the report still reads its counters; they are just
	// not exportable afterwards). Observability never changes outputs:
	// notebooks, reports and p-values are byte-identical with Obs set or
	// nil, at every Threads setting.
	Obs *obs.Registry

	// Seed makes the whole run deterministic.
	Seed int64

	// forceStatsLevel / forceHypoLevel pin a degradation-ladder rung for
	// the corresponding phase, bypassing the governor's wall-clock
	// decisions. Test-only: wall-clock pressure is inherently flaky to
	// reproduce, while a pinned rung exercises the exact same code path
	// deterministically. Zero value (governor.Full) means "ask the
	// governor", i.e. production behaviour.
	forceStatsLevel governor.Level
	forceHypoLevel  governor.Level
}

// logf is the nil-safe logging helper.
func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Validate reports the first configuration error, with enough context to
// fix it. Generate calls it; tools can call it earlier for better error
// placement.
func (c Config) Validate() error {
	switch {
	case c.Perms <= 0:
		return fmt.Errorf("pipeline: Perms must be positive, got %d", c.Perms)
	case c.Alpha <= 0 || c.Alpha >= 1:
		return fmt.Errorf("pipeline: Alpha must be in (0, 1), got %v", c.Alpha)
	case c.EpsT <= 0:
		return fmt.Errorf("pipeline: EpsT must be positive, got %d", c.EpsT)
	case c.EpsD < 0:
		return fmt.Errorf("pipeline: EpsD must be non-negative, got %v", c.EpsD)
	case c.SampleFrac < 0 || c.SampleFrac > 1:
		return fmt.Errorf("pipeline: SampleFrac must be in [0, 1], got %v", c.SampleFrac)
	//nolint:floateq // 0 is the explicit "unset" sentinel for SampleFrac, not a computed value
	case c.Sampling != sampling.None && c.SampleFrac == 0:
		return fmt.Errorf("pipeline: %v sampling with SampleFrac 0 would test nothing", c.Sampling)
	case c.FDMaxError < 0 || c.FDMaxError >= 1:
		return fmt.Errorf("pipeline: FDMaxError must be in [0, 1), got %v", c.FDMaxError)
	case c.TimeBudget < 0:
		return fmt.Errorf("pipeline: TimeBudget must be non-negative, got %v", c.TimeBudget)
	case c.MemBudget < 0:
		return fmt.Errorf("pipeline: MemBudget must be non-negative, got %d", c.MemBudget)
	case float64(1)/float64(c.Perms+1) > c.Alpha:
		return fmt.Errorf("pipeline: Perms=%d cannot reach significance at Alpha=%v "+
			"(the smallest possible permutation p-value is 1/(Perms+1) = %.4f); increase Perms",
			c.Perms, c.Alpha, 1/float64(c.Perms+1))
	}
	return nil
}

// NewConfig returns the default configuration: full data, heuristic
// solver, a 10-query notebook.
func NewConfig() Config {
	return Config{
		Name:            "default",
		Sampling:        sampling.None,
		SampleFrac:      1,
		Perms:           200,
		Alpha:           0.05,
		MinSideRows:     2,
		Interest:        metric.DefaultInterest,
		Weights:         metric.DefaultWeights,
		Threads:         runtime.GOMAXPROCS(0),
		UseWSC:          false,
		MaxCoverSize:    4,
		CubeCacheBudget: 64 << 20,
		EpsT:            10,
		EpsD:            1.5,
		Solver:          SolverHeuristic,
		ExactTimeout:    time.Hour,
	}
}

// insightTypes resolves the effective insight-type set.
func (c Config) insightTypes() []insight.Type {
	if len(c.InsightTypes) == 0 {
		return insight.AllTypes
	}
	return c.InsightTypes
}

// threads resolves the effective worker count.
func (c Config) threads() int {
	if c.Threads > 0 {
		return c.Threads
	}
	return runtime.GOMAXPROCS(0)
}

// NaiveExact is Table 3's "Naive-exact": Algorithm 1 with the §5.2.1
// bounding, exact TAP resolution.
func NaiveExact(epsT int, epsD float64) Config {
	c := NewConfig()
	c.Name = "Naive-exact"
	c.Solver = SolverExact
	c.EpsT, c.EpsD = epsT, epsD
	return c
}

// NaiveApprox is Table 3's "Naive-approx": bounding + Algorithm 3.
func NaiveApprox(epsT int, epsD float64) Config {
	c := NewConfig()
	c.Name = "Naive-approx"
	c.EpsT, c.EpsD = epsT, epsD
	return c
}

// WSCApprox is Table 3's "WSC-approx": Algorithm 2 + Algorithm 3.
func WSCApprox(epsT int, epsD float64) Config {
	c := NewConfig()
	c.Name = "WSC-approx"
	c.UseWSC = true
	c.EpsT, c.EpsD = epsT, epsD
	return c
}

// WSCUnbApprox is Table 3's "WSC-unb-approx": Algorithm 2 + unbalanced
// sampling at the given fraction + Algorithm 3.
func WSCUnbApprox(epsT int, epsD float64, frac float64) Config {
	c := WSCApprox(epsT, epsD)
	c.Name = "WSC-unb-approx"
	c.Sampling = sampling.Unbalanced
	c.SampleFrac = frac
	return c
}

// WSCRandApprox is Table 3's "WSC-rand-approx": Algorithm 2 + random
// sampling + Algorithm 3.
func WSCRandApprox(epsT int, epsD float64, frac float64) Config {
	c := WSCApprox(epsT, epsD)
	c.Name = "WSC-rand-approx"
	c.Sampling = sampling.Random
	c.SampleFrac = frac
	return c
}

// WSCApproxSig is the Table 7 user-study variant whose interestingness is
// significance only (no conciseness, no credibility).
func WSCApproxSig(epsT int, epsD float64) Config {
	c := WSCApprox(epsT, epsD)
	c.Name = "WSC-approx-sig"
	c.Interest = metric.InterestParams{Omega: 1}
	return c
}

// WSCApproxSigCred is the Table 7 variant with significance and
// credibility but no conciseness.
func WSCApproxSigCred(epsT int, epsD float64) Config {
	c := WSCApprox(epsT, epsD)
	c.Name = "WSC-approx-sig-cred"
	c.Interest = metric.InterestParams{Omega: 1, UseCredibility: true}
	return c
}

// Timings is the per-phase runtime breakdown of Figure 7 (bottom) and
// Figure 8.
type Timings struct {
	FD        time.Duration // functional-dependency pre-processing
	Sampling  time.Duration // offline sample construction
	StatTests time.Duration // permutation tests + BH (phase (i) of Fig. 8)
	HypoEval  time.Duration // cube building + support checks (phase (ii))
	TAP       time.Duration // solver
	Total     time.Duration
}

// Counts summarises what the run saw.
type Counts struct {
	InsightsEnumerated  int // Lemma 3.5 candidates actually tested
	SignificantInsights int // after BH at level Alpha
	PrunedTransitive    int // removed by §3.3 transitivity
	SupportChecks       int // hypothesis-query evaluations
	CubesBuilt          int // cubes aggregated from the base relation (cache misses)
	QueriesGenerated    int // |Q| after Algorithm 1's dedup

	// Cube-cache counters, snapshotted at the end of the hypothesis phase.
	CacheHits      int
	CacheRollups   int // subset group-bys answered via Rollup of a cached superset
	CacheMisses    int
	CacheEvictions int
}
