package pipeline

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"comparenb/internal/datagen"
	"comparenb/internal/engine"
	"comparenb/internal/insight"
	"comparenb/internal/sampling"
)

// testConfig is a fast configuration for unit tests.
func testConfig() Config {
	c := NewConfig()
	c.Perms = 150
	c.EpsT = 5
	c.EpsD = 2.0
	c.Seed = 1
	c.Threads = 2
	return c
}

func tinyDataset(t *testing.T) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Tiny(7, 1500)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestGenerateEndToEnd(t *testing.T) {
	ds := tinyDataset(t)
	res, err := Generate(ds.Rel, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.InsightsEnumerated == 0 {
		t.Fatal("no insights tested")
	}
	if res.Counts.SignificantInsights == 0 {
		t.Fatal("no significant insights on a dataset with strong planted effects")
	}
	if len(res.Queries) == 0 {
		t.Fatal("no comparison queries generated")
	}
	if len(res.Solution.Order) == 0 {
		t.Fatal("empty notebook")
	}
	if len(res.Solution.Order) > testConfig().EpsT {
		t.Errorf("notebook has %d queries, budget %d", len(res.Solution.Order), testConfig().EpsT)
	}
	inst := Instance(res.Queries, testConfig().Weights)
	if err := inst.Feasible(res.Solution, float64(testConfig().EpsT), testConfig().EpsD); err != nil {
		t.Errorf("solution infeasible: %v", err)
	}
	// Interests must be positive and queries deduped per (B,val,val',M,agg).
	type dk struct {
		attr      int
		val, val2 int32
		meas      int
		agg       string
	}
	seen := map[dk]bool{}
	for _, q := range res.Queries {
		if q.Interest < 0 {
			t.Errorf("negative interest %v", q.Interest)
		}
		k := dk{q.Query.Attr, q.Query.Val, q.Query.Val2, q.Query.Meas, q.Query.Agg.String()}
		if seen[k] {
			t.Errorf("dedup failed: two queries share %+v", k)
		}
		seen[k] = true
	}
}

// TestGenerateFindsPlantedInsights checks recall of the ground truth: a
// decent share of checkable planted mean effects must be detected.
func TestGenerateFindsPlantedInsights(t *testing.T) {
	ds := tinyDataset(t)
	res, err := Generate(ds.Rel, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	found := map[insight.Key]bool{}
	for _, ins := range res.Insights {
		found[ins.Key()] = true
	}
	// Transitivity pruning removes deducible plants, so check: each
	// planted insight is found directly OR its attribute has ≥1 finding.
	direct, checkable := 0, 0
	for _, pl := range ds.Planted {
		if pl.Type != insight.MeanGreater {
			continue
		}
		c1, ok1 := ds.Rel.CodeOf(pl.Attr, pl.Val)
		c2, ok2 := ds.Rel.CodeOf(pl.Attr, pl.Val2)
		if !ok1 || !ok2 {
			continue
		}
		checkable++
		if found[insight.Key{Meas: pl.Meas, Attr: pl.Attr, Val: c1, Val2: c2, Type: pl.Type}] {
			direct++
		}
	}
	if checkable == 0 {
		t.Fatal("no checkable planted insights")
	}
	if ratio := float64(direct) / float64(checkable); ratio < 0.3 {
		t.Errorf("direct planted recall = %.2f (%d/%d), suspiciously low", ratio, direct, checkable)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	ds := tinyDataset(t)
	cfg := testConfig()
	a, err := Generate(ds.Rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Threads = 7 // different scheduling must not change the outcome
	b, err := Generate(ds.Rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Queries) != len(b.Queries) {
		t.Fatalf("|Q| differs: %d vs %d", len(a.Queries), len(b.Queries))
	}
	for i := range a.Queries {
		if a.Queries[i].Query != b.Queries[i].Query {
			t.Fatalf("query %d differs: %+v vs %+v", i, a.Queries[i].Query, b.Queries[i].Query)
		}
		if a.Queries[i].Interest != b.Queries[i].Interest {
			t.Fatalf("interest %d differs", i)
		}
	}
	if !reflect.DeepEqual(a.Solution.Order, b.Solution.Order) {
		t.Errorf("notebook order differs: %v vs %v", a.Solution.Order, b.Solution.Order)
	}
}

// TestWSCMatchesNaive: Algorithm 2 is a pure evaluation optimization — the
// generated query set must be identical with and without it.
func TestWSCMatchesNaive(t *testing.T) {
	ds := tinyDataset(t)
	cfg := testConfig()
	naive, err := Generate(ds.Rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.UseWSC = true
	wsc, err := Generate(ds.Rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(naive.Queries) != len(wsc.Queries) {
		t.Fatalf("|Q| differs: naive %d vs WSC %d", len(naive.Queries), len(wsc.Queries))
	}
	for i := range naive.Queries {
		if naive.Queries[i].Query != wsc.Queries[i].Query {
			t.Errorf("query %d differs: %+v vs %+v", i, naive.Queries[i].Query, wsc.Queries[i].Query)
		}
	}
	if wsc.Counts.CubesBuilt > naive.Counts.CubesBuilt {
		t.Errorf("WSC built %d cubes, naive %d — merging should not need more",
			wsc.Counts.CubesBuilt, naive.Counts.CubesBuilt)
	}
}

// TestWSCMemoryBudgetFallback: an absurdly small budget must trigger the
// §5.2.2 fallback to per-pair cubes, with identical results.
func TestWSCMemoryBudgetFallback(t *testing.T) {
	ds := tinyDataset(t)
	cfg := testConfig()
	cfg.UseWSC = true
	cfg.MemoryBudget = 1 // bytes
	res, err := Generate(ds.Rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := testConfig()
	plain, err := Generate(ds.Rel, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != len(plain.Queries) {
		t.Errorf("fallback |Q| = %d, naive %d", len(res.Queries), len(plain.Queries))
	}
}

func TestSamplingVariantsRun(t *testing.T) {
	ds := tinyDataset(t)
	for _, s := range []sampling.Strategy{sampling.Random, sampling.Unbalanced} {
		cfg := testConfig()
		cfg.Sampling = s
		cfg.SampleFrac = 0.5
		res, err := Generate(ds.Rel, cfg)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Counts.SignificantInsights == 0 {
			t.Errorf("%v sampling found nothing at 50%%", s)
		}
	}
}

func TestExactSolverBeatsHeuristicInterest(t *testing.T) {
	ds := tinyDataset(t)
	cfg := testConfig()
	cfg.EpsT = 4
	heur, err := Generate(ds.Rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Solver = SolverExact
	exact, err := Generate(ds.Rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if exact.ExactStats == nil {
		t.Fatal("exact stats missing")
	}
	if heur.Solution.TotalInterest > exact.Solution.TotalInterest+1e-9 {
		t.Errorf("heuristic %v beat exact %v", heur.Solution.TotalInterest, exact.Solution.TotalInterest)
	}
}

func TestCredibilityBounds(t *testing.T) {
	ds := tinyDataset(t)
	res, err := Generate(ds.Rel, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := ds.Rel.NumCatAttrs()
	for _, ins := range res.Insights {
		if ins.NumHypo <= 0 || ins.NumHypo > n-1 {
			t.Errorf("NumHypo = %d outside (0, %d]", ins.NumHypo, n-1)
		}
		if ins.Credibility < 0 || ins.Credibility > ins.NumHypo {
			t.Errorf("credibility %d outside [0, %d]", ins.Credibility, ins.NumHypo)
		}
		if ins.Sig < 1-testConfig().Alpha-1e-9 {
			t.Errorf("kept insight with sig %v < %v", ins.Sig, 1-testConfig().Alpha)
		}
	}
	// Every retained query must evidence at least one insight. (Its
	// credibility may still be 0: credibility counts the canonical
	// avg-agg hypothesis queries only, while the query itself may support
	// the insight through another aggregate.)
	for _, q := range res.Queries {
		if len(q.Supported) == 0 {
			t.Error("query retained without supported insights")
		}
		if q.Query.Agg == engine.Avg {
			for _, ins := range q.Supported {
				if ins.Credibility == 0 {
					t.Errorf("avg query supports an insight with credibility 0: %+v", ins)
				}
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	ds := tinyDataset(t)
	cfg := testConfig()
	cfg.Perms = 0
	if _, err := Generate(ds.Rel, cfg); err == nil {
		t.Error("Perms=0: want error")
	}
}

func TestBuildNotebook(t *testing.T) {
	ds := tinyDataset(t)
	res, err := Generate(ds.Rel, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	nb := BuildNotebook(res)
	if nb.NumQueries() != len(res.Solution.Order) {
		t.Errorf("notebook has %d code cells, want %d", nb.NumQueries(), len(res.Solution.Order))
	}
	var buf bytes.Buffer
	if err := nb.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "select t1.") || !strings.Contains(out, "Interestingness") {
		t.Error("notebook markdown missing expected content")
	}
	var ipynb bytes.Buffer
	if err := nb.WriteIPYNB(&ipynb); err != nil {
		t.Fatal(err)
	}
}

func TestHypothesisSQL(t *testing.T) {
	ds := tinyDataset(t)
	res, err := Generate(ds.Rel, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sq := res.Queries[0]
	sql := HypothesisSQL(ds.Rel, sq, sq.Supported[0])
	if !strings.Contains(sql, "hypothesis") || !strings.Contains(sql, "having") {
		t.Errorf("hypothesis SQL malformed:\n%s", sql)
	}
}

func TestTimingsPopulated(t *testing.T) {
	ds := tinyDataset(t)
	res, err := Generate(ds.Rel, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Timings
	if tm.StatTests <= 0 || tm.HypoEval <= 0 || tm.Total <= 0 {
		t.Errorf("timings not populated: %+v", tm)
	}
	if tm.Total < tm.StatTests+tm.HypoEval {
		t.Errorf("total %v < stats %v + hypo %v", tm.Total, tm.StatTests, tm.HypoEval)
	}
}

func TestParallelForCoversAllJobs(t *testing.T) {
	ctx := context.Background()
	for _, threads := range []int{0, 1, 3, 16} {
		var sum atomic.Int64
		err := parallelForCtx(ctx, threads, 100, func(_ context.Context, i int) error {
			sum.Add(int64(i))
			return nil
		})
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if sum.Load() != 4950 {
			t.Errorf("threads=%d: sum = %d, want 4950", threads, sum.Load())
		}
	}
	err := parallelForCtx(ctx, 4, 0, func(context.Context, int) error {
		t.Error("fn called for n=0")
		return nil
	})
	if err != nil {
		t.Fatalf("n=0: %v", err)
	}
}

func TestParallelForCtxReportsSmallestIndexError(t *testing.T) {
	for _, threads := range []int{1, 4} {
		err := parallelForCtx(context.Background(), threads, 50, func(_ context.Context, i int) error {
			if i%7 == 3 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Errorf("threads=%d: err = %v, want job 3 failed", threads, err)
		}
	}
}

func TestParallelForCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, threads := range []int{1, 4} {
		called := atomic.Int64{}
		err := parallelForCtx(ctx, threads, 20, func(_ context.Context, i int) error {
			called.Add(1)
			return nil
		})
		if err != context.Canceled {
			t.Errorf("threads=%d: err = %v, want context.Canceled", threads, err)
		}
		if called.Load() != 0 {
			t.Errorf("threads=%d: %d jobs ran under a pre-cancelled ctx", threads, called.Load())
		}
	}
}

func TestJobSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for i := -2; i < 1000; i++ {
		s := jobSeed(42, i)
		if s < 0 {
			t.Fatalf("negative seed %d", s)
		}
		if seen[s] {
			t.Fatalf("seed collision at job %d", i)
		}
		seen[s] = true
	}
}

func TestPresetNames(t *testing.T) {
	cases := map[string]Config{
		"Naive-exact":         NaiveExact(10, 1),
		"Naive-approx":        NaiveApprox(10, 1),
		"WSC-approx":          WSCApprox(10, 1),
		"WSC-unb-approx":      WSCUnbApprox(10, 1, 0.2),
		"WSC-rand-approx":     WSCRandApprox(10, 1, 0.4),
		"WSC-approx-sig":      WSCApproxSig(10, 1),
		"WSC-approx-sig-cred": WSCApproxSigCred(10, 1),
	}
	for want, cfg := range cases {
		if cfg.Name != want {
			t.Errorf("preset name = %q, want %q", cfg.Name, want)
		}
	}
	if !WSCUnbApprox(10, 1, 0.2).UseWSC || WSCUnbApprox(10, 1, 0.2).Sampling != sampling.Unbalanced {
		t.Error("WSC-unb-approx preset wrong")
	}
	if NaiveExact(10, 1).Solver != SolverExact {
		t.Error("Naive-exact must use the exact solver")
	}
	sig := WSCApproxSig(10, 1)
	if sig.Interest.UseConciseness || sig.Interest.UseCredibility {
		t.Error("sig-only variant must disable conciseness and credibility")
	}
}

func TestIncludeHypothesesAndLogf(t *testing.T) {
	ds := tinyDataset(t)
	cfg := testConfig()
	cfg.IncludeHypotheses = true
	var lines []string
	cfg.Logf = func(format string, args ...any) {
		lines = append(lines, format)
	}
	res, err := Generate(ds.Rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) < 4 {
		t.Errorf("Logf called %d times, want one per phase", len(lines))
	}
	nb := BuildNotebook(res)
	// With hypotheses included there are more code cells than selected
	// queries (each supported insight adds one).
	if nb.NumQueries() <= len(res.Solution.Order) {
		t.Errorf("hypothesis cells missing: %d code cells for %d queries",
			nb.NumQueries(), len(res.Solution.Order))
	}
	var buf strings.Builder
	if err := nb.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "as hypothesis") {
		t.Error("hypothesis SQL missing from notebook")
	}
}

func TestAutoConciseness(t *testing.T) {
	ds := tinyDataset(t)
	cfg := testConfig()
	cfg.AutoConciseness = true
	res, err := Generate(ds.Rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) == 0 {
		t.Fatal("no queries")
	}
	// With a calibrated peak, the best query should score a conciseness
	// near 1, so top interests should not be vanishingly small compared
	// to the sig-only ceiling.
	top := 0.0
	for _, q := range res.Queries {
		if q.Interest > top {
			top = q.Interest
		}
	}
	if top < 0.05 {
		t.Errorf("top interest = %v; calibration failed to lift the conciseness peak", top)
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Perms = 0 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Alpha = 1.5 },
		func(c *Config) { c.EpsT = 0 },
		func(c *Config) { c.EpsD = -1 },
		func(c *Config) { c.SampleFrac = 2 },
		func(c *Config) { c.Sampling = sampling.Random; c.SampleFrac = 0 },
		func(c *Config) { c.FDMaxError = 1 },
		func(c *Config) { c.Perms = 5; c.Alpha = 0.05 }, // p-floor unreachable
	}
	for i, mutate := range cases {
		cfg := testConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
