package pipeline

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestReportJSON(t *testing.T) {
	ds := tinyDataset(t)
	res, err := Generate(ds.Rel, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	if rep.Dataset != "tiny" || rep.Rows != ds.Rel.NumRows() {
		t.Errorf("report header: %s/%d", rep.Dataset, rep.Rows)
	}
	if len(rep.Insights) != len(res.Insights) {
		t.Errorf("report insights = %d, want %d", len(rep.Insights), len(res.Insights))
	}
	if len(rep.Notebook) != len(res.Solution.Order) {
		t.Errorf("report notebook = %d, want %d", len(rep.Notebook), len(res.Solution.Order))
	}
	for i, q := range rep.Notebook {
		if q.Step != i+1 {
			t.Errorf("step numbering: %d at index %d", q.Step, i)
		}
		if !strings.Contains(q.SQL, "select t1.") {
			t.Errorf("step %d SQL missing", q.Step)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.Config.Solver != "heuristic" || back.Config.BHScope != "per-pair" {
		t.Errorf("config round trip: %+v", back.Config)
	}
	if back.Timings.TotalMillis <= 0 {
		t.Error("timings missing")
	}
}

func TestReportExactFlag(t *testing.T) {
	ds := tinyDataset(t)
	cfg := testConfig()
	cfg.Solver = SolverExact
	cfg.EpsT = 3
	res, err := Generate(ds.Rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	if rep.ExactOptimal == nil {
		t.Fatal("exact run must set ExactOptimal")
	}
}
