package pipeline

import (
	"math"
	"testing"

	"comparenb/internal/table"
)

// TestConstantMeasureFindsNothing: a constant measure can never yield a
// significant comparison; the pipeline must return an empty (not broken)
// result.
func TestConstantMeasureFindsNothing(t *testing.T) {
	b := table.NewBuilder("const", []string{"a", "b", "c"}, []string{"m"})
	for i := 0; i < 300; i++ {
		b.AddRow([]string{
			string(rune('a' + i%3)),
			string(rune('a' + i%4)),
			string(rune('a' + i%5)),
		}, []float64{42})
	}
	res, err := Generate(b.Build(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.SignificantInsights != 0 {
		t.Errorf("constant measure produced %d insights", res.Counts.SignificantInsights)
	}
	if len(res.Solution.Order) != 0 {
		t.Errorf("constant measure produced a %d-query notebook", len(res.Solution.Order))
	}
	nb := BuildNotebook(res)
	if nb.NumQueries() != 0 {
		t.Error("notebook should be empty")
	}
}

// TestAllNaNMeasure: a measure that is entirely NaN (e.g. an unparseable
// CSV column forced numeric) must be skipped without panics.
func TestAllNaNMeasure(t *testing.T) {
	b := table.NewBuilder("nan", []string{"a", "b", "c"}, []string{"bad", "good"})
	for i := 0; i < 400; i++ {
		good := float64(i % 3 * 50)
		b.AddRow([]string{
			string(rune('a' + i%3)),
			string(rune('a' + i%4)),
			string(rune('a' + i%2)),
		}, []float64{math.NaN(), good})
	}
	res, err := Generate(b.Build(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range res.Insights {
		if ins.Meas == 0 {
			t.Errorf("insight found on the all-NaN measure: %+v", ins)
		}
	}
	if res.Counts.SignificantInsights == 0 {
		t.Error("the good measure's planted pattern was missed")
	}
}

// TestPartialNaNMeasure: NaN cells force per-measure permutations (the
// shared-permutation fast path must detect the differing pool sizes).
func TestPartialNaNMeasure(t *testing.T) {
	b := table.NewBuilder("seminan", []string{"a", "b", "c"}, []string{"m1", "m2"})
	for i := 0; i < 500; i++ {
		m1 := float64(i%3) * 40
		m2 := float64(i%3) * 40
		if i%7 == 0 {
			m2 = math.NaN()
		}
		b.AddRow([]string{
			string(rune('a' + i%3)),
			string(rune('a' + i%4)),
			string(rune('a' + i%2)),
		}, []float64{m1, m2})
	}
	res, err := Generate(b.Build(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	m2Found := false
	for _, ins := range res.Insights {
		if ins.Meas == 1 {
			m2Found = true
		}
	}
	if !m2Found {
		t.Error("NaN-diluted measure lost all its insights")
	}
}

// TestFullyDependentAttributes: if every attribute pair is related by an
// FD, no valid grouping exists and the result must be empty, not a panic.
func TestFullyDependentAttributes(t *testing.T) {
	b := table.NewBuilder("fd", []string{"day", "month", "quarter"}, []string{"m"})
	for i := 0; i < 200; i++ {
		day := i % 12
		b.AddRow([]string{
			string(rune('a' + day)),
			string(rune('a' + day/2)), // day → month, 6 values
			string(rune('a' + day/4)), // month → quarter, 3 values
		}, []float64{float64(day * 10)})
	}
	res, err := Generate(b.Build(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// day→month→quarter chains leave no (A, B) pair without an FD:
	// every hypothesis query is meaningless, so Q must be empty even if
	// insights are significant.
	if len(res.Queries) != 0 {
		t.Errorf("%d queries generated despite full FD closure", len(res.Queries))
	}
}

// TestSingleValuePerSide: attributes with values occurring once cannot be
// tested (MinSideRows) and must be skipped silently.
func TestSingleValuePerSide(t *testing.T) {
	b := table.NewBuilder("sparse", []string{"id", "grp", "other"}, []string{"m"})
	for i := 0; i < 60; i++ {
		b.AddRow([]string{
			string(rune('A' + i)), // unique per row
			string(rune('a' + i%2)),
			string(rune('a' + i%3)),
		}, []float64{float64(i%2) * 100})
	}
	res, err := Generate(b.Build(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range res.Insights {
		if ins.Attr == 0 {
			t.Errorf("insight on the unique-valued attribute: %+v", ins)
		}
	}
}

// TestMaxPairsPerAttrCapsWork verifies the scale valve keeps the most
// frequent values.
func TestMaxPairsPerAttrCapsWork(t *testing.T) {
	ds := tinyDataset(t)
	cfg := testConfig()
	cfg.MaxPairsPerAttr = 3
	res, err := Generate(ds.Rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Generate(ds.Rel, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.InsightsEnumerated >= full.Counts.InsightsEnumerated {
		t.Errorf("cap did not reduce tests: %d vs %d",
			res.Counts.InsightsEnumerated, full.Counts.InsightsEnumerated)
	}
	if res.Counts.InsightsEnumerated == 0 {
		t.Error("cap removed everything")
	}
}
