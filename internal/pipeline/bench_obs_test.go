package pipeline

import (
	"testing"

	"comparenb/internal/datagen"
	"comparenb/internal/obs"
)

// benchGenerateObs times a full Generate run at a fixed observability
// setting. The three variants price the tentpole's overhead contract:
// counters-only must stay within ~1% of the unobserved run, and the
// unobserved run itself only pays nil-safe no-ops (see BENCH/EXPERIMENTS
// for tracked numbers).
func benchGenerateObs(b *testing.B, mode string) {
	ds, err := datagen.Tiny(7, 900)
	if err != nil {
		b.Fatal(err)
	}
	cfg := NewConfig()
	cfg.Perms = 100
	cfg.Seed = 11
	cfg.EpsT = 5
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Obs = nil
		switch mode {
		case "counters":
			cfg.Obs = obs.New()
		case "tracing":
			// Size the ring to the run: the default 64Ki-span buffer is
			// meant for second-scale CLI runs, and allocating 3 MiB per
			// millisecond-scale benchmark iteration would price the buffer,
			// not the collection.
			reg := obs.New()
			reg.EnableTracing(4096)
			cfg.Obs = reg
		}
		if _, err := Generate(ds.Rel, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateObsOff(b *testing.B)      { benchGenerateObs(b, "off") }
func BenchmarkGenerateObsCounters(b *testing.B) { benchGenerateObs(b, "counters") }
func BenchmarkGenerateObsTracing(b *testing.B)  { benchGenerateObs(b, "tracing") }
