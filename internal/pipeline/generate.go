package pipeline

import (
	"context"
	"fmt"
	"strings"
	"time"

	"comparenb/internal/engine"
	"comparenb/internal/governor"
	"comparenb/internal/insight"
	"comparenb/internal/metric"
	"comparenb/internal/notebook"
	"comparenb/internal/obs"
	"comparenb/internal/sqlgen"
	"comparenb/internal/table"
	"comparenb/internal/tap"
)

// Result is everything a notebook-generation run produced.
type Result struct {
	Relation *table.Relation
	Config   Config

	// Queries is the generated set Q (after dedup), deterministic order.
	Queries []ScoredQuery
	// Insights are the significant insights with final credibility.
	Insights []insight.Insight
	// Solution is the TAP solution; its Order indexes Queries.
	Solution tap.Solution
	// ExactStats is set when the exact solver ran.
	ExactStats *tap.ExactStats
	// TAP records how the solution was produced: which solver rung
	// answered, whether the run's TimeBudget forced a degradation, and
	// the certified optimality gap (exact runs only; heuristic solvers
	// report no gap).
	TAP TAPOutcome

	Timings Timings
	Counts  Counts

	// Degraded names every budget-driven concession the run made (empty
	// when nothing degraded — the byte-identity case).
	Degraded Degradation

	// cache is the run's partial-aggregate store; BuildNotebook answers
	// the verification queries from it instead of rescanning the base
	// relation. Nil for zero-value Results built outside Generate.
	cache *engine.CubeCache
}

// CacheStats returns the cube-cache counters, including any hits recorded
// after Generate (notebook verification queries). Zero value when the
// Result was not produced by Generate.
func (r *Result) CacheStats() engine.CacheStats {
	if r.cache == nil {
		return engine.CacheStats{}
	}
	return r.cache.Stats()
}

// Sequence returns the selected queries in notebook order.
func (r *Result) Sequence() []ScoredQuery {
	out := make([]ScoredQuery, len(r.Solution.Order))
	for i, qi := range r.Solution.Order {
		out[i] = r.Queries[qi]
	}
	return out
}

// Degradation is the run-level record of graceful degradation: which
// phases conceded anything to the resource budgets, and what exactly was
// cut. The zero value means the run was byte-identical to an unbudgeted
// one; reports serialise the fields with omitempty so that stays visible
// in the JSON too.
type Degradation struct {
	// Phases lists the degraded phases in pipeline order, drawn from
	// "stats", "hypo", "engine", "tap".
	Phases []string
	// PermsEffective is the smallest permutation count an early-stopped
	// test actually evaluated (0 = no test was truncated).
	PermsEffective int
	// PairsSkipped counts candidate (attribute, value pair) test jobs the
	// Shed rung dropped without testing.
	PairsSkipped int
	// HypoDropped counts significant insights cut by the hypothesis
	// phase's candidate cap.
	HypoDropped int
	// MemEvictions counts memory-budget admission actions of the cube
	// cache: evictions to make room plus refusals to cache at all.
	MemEvictions int
}

// Any reports whether the run degraded at all.
func (d Degradation) Any() bool { return len(d.Phases) > 0 }

// TAPOutcome records how the TAP solution was produced.
type TAPOutcome struct {
	// Solver names what actually answered: a SolverKind string for the
	// heuristic solvers, or one of the tap.Anytime* rung names for exact
	// runs ("exact", "exact-incumbent+2opt", "greedy+2opt").
	Solver string
	// Degraded is true when the time budget expired mid-search and a
	// heuristic rung of the anytime ladder finished the job.
	Degraded bool
	// Gap is the certified relative optimality gap (0 when provably
	// optimal or when a heuristic solver carries no certificate).
	Gap float64
	// TimedOut is true when any budget stopped the exact search.
	TimedOut bool
}

// Generate runs the full pipeline of Figure 1 over the relation: tests →
// significant insights → hypothesis-query evaluation → comparison-query
// set Q → TAP → ordered notebook content.
func Generate(rel *table.Relation, cfg Config) (*Result, error) {
	return GenerateContext(context.Background(), rel, cfg)
}

// GenerateContext is Generate with cooperative cancellation: cancelling
// ctx abandons the run at the next phase-safe checkpoint (a permutation
// stride, a cube shard, a worker-pool job, a branch-and-bound tick) and
// returns ctx's error with no partial Result. Cancellation is the hard
// stop; the soft, always-produce-a-notebook discipline is
// Config.TimeBudget. A ctx that is never cancelled changes nothing —
// every checkpoint only reads it.
func GenerateContext(ctx context.Context, rel *table.Relation, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if rel.NumCatAttrs() < 2 {
		return nil, fmt.Errorf("pipeline: need at least 2 categorical attributes, have %d", rel.NumCatAttrs())
	}
	if rel.NumMeasures() < 1 {
		return nil, fmt.Errorf("pipeline: need at least 1 measure")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Relation: rel, Config: cfg}
	start := time.Now()
	// Observability: every run reports into a registry — the caller's
	// (cfg.Obs, exportable afterwards) or a private one — and the phases
	// below read it back as the single source of counter truth. The
	// registry never influences outputs; it only records them.
	reg := cfg.Obs
	if reg == nil {
		reg = obs.New()
	}
	ctx = obs.NewContext(ctx, reg)
	runSp := obs.StartSpan(ctx, "run")
	defer runSp.End()
	// The governor splits the soft budget across the phases below; nil
	// (no TimeBudget) is the ungoverned, always-Full case.
	gov := governor.New(cfg.TimeBudget, start)
	gov.Instrument(reg)

	// Pre-processing: functional dependencies (footnote 2).
	t0 := time.Now()
	fdSp := obs.StartSpan(ctx, "phase/fd")
	fds := engine.NewFDSet(engine.DetectFDsApprox(rel, cfg.FDMaxError))
	fdSp.End()
	res.Timings.FD = time.Since(t0)
	reg.Timing("phase_fd").Observe(res.Timings.FD)
	cfg.logf("pipeline: FD pre-processing done in %v", res.Timings.FD)

	// Phase (i): statistical tests.
	t0 = time.Now()
	gov.StartPhase(governor.Stats)
	statsSp := obs.StartSpan(ctx, "phase/stats")
	sig, tested, err := runStatTests(ctx, rel, cfg, gov)
	statsSp.End()
	reg.Timing("phase_stats").Observe(time.Since(t0))
	if err != nil {
		reg.MarkInterrupted()
		return nil, err
	}
	reg.Counter("stats_insights_tested").Add(int64(tested))
	reg.Counter("stats_insights_significant").Add(int64(len(sig)))
	res.Counts.InsightsEnumerated = tested
	res.Counts.SignificantInsights = len(sig)
	res.Timings.StatTests = time.Since(t0)
	cfg.logf("pipeline: %d insights tested, %d significant, in %v",
		tested, len(sig), res.Timings.StatTests)

	// Transitivity pruning (§3.3).
	if !cfg.DisableTransitivePruning {
		before := len(sig)
		sig = insight.PruneTransitive(sig)
		res.Counts.PrunedTransitive = before - len(sig)
		reg.Counter("stats_pruned_transitive").Add(int64(res.Counts.PrunedTransitive))
		cfg.logf("pipeline: transitivity pruned %d deducible insights", before-len(sig))
	}

	// Phase (ii): hypothesis-query evaluation on in-memory aggregates,
	// shared through the run's cube cache.
	t0 = time.Now()
	gov.StartPhase(governor.Hypo)
	// A shared cache (cfg.Cache — the serving path) arrives configured and
	// instrumented by its owner; the run only reads and inserts, and its
	// per-run counter view is the delta over the run. A private cache is
	// created, bound to the run registry and budgeted here as before.
	var cacheBase engine.CacheStats
	if cfg.Cache != nil {
		res.cache = cfg.Cache
		cacheBase = res.cache.Stats()
	} else {
		res.cache = engine.NewCubeCache(cfg.CubeCacheBudget)
		res.cache.Instrument(reg)
		res.cache.SetNoEncode(cfg.NoCompress)
		if cfg.MemBudget > 0 {
			res.cache.SetMemBudget(cfg.MemBudget)
		}
	}
	hypoSp := obs.StartSpan(ctx, "phase/hypo")
	queries, final, counts, err := evalHypotheses(ctx, rel, cfg, fds, sig, res.cache, gov)
	hypoSp.End()
	reg.Timing("phase_hypo").Observe(time.Since(t0))
	if err != nil {
		reg.MarkInterrupted()
		return nil, err
	}
	// Trim at the phase boundary (single-threaded): eviction decisions are
	// a pure function of the deterministic entry set, never of scheduling.
	res.cache.Trim()
	cs := res.cache.Stats()
	if cfg.Cache != nil {
		cs = cs.Delta(cacheBase)
	}
	// Compression bookkeeping, read single-threaded at the phase boundary:
	// gauges, not counters, because whether the lazy encode ran at all
	// depends on relation size and the NoCompress flag, and gauges record
	// the final state without double-counting.
	if enc := rel.EncodedCached(); enc != nil && !cfg.NoCompress {
		reg.Gauge("table_encode_columns").Set(int64(len(enc.ColumnStats())))
		reg.Gauge("table_encode_bytes_raw").Set(int64(enc.RawBytes()))
		reg.Gauge("table_encode_bytes_encoded").Set(int64(enc.EncodedBytes()))
	}
	res.Queries = queries
	res.Insights = final
	res.Counts.CubesBuilt = int(cs.Misses)
	res.Counts.SupportChecks = counts.SupportChecks
	res.Counts.QueriesGenerated = counts.QueriesGenerated
	res.Counts.CacheHits = int(cs.Hits)
	res.Counts.CacheRollups = int(cs.RollupHits)
	res.Counts.CacheMisses = int(cs.Misses)
	res.Counts.CacheEvictions = int(cs.Evictions)
	res.Timings.HypoEval = time.Since(t0)
	cfg.logf("pipeline: %d cubes built, cache %d hits / %d rollups / %d misses / %d evictions (%d B cached), %d support checks, |Q| = %d, in %v",
		res.Counts.CubesBuilt, cs.Hits, cs.RollupHits, cs.Misses, cs.Evictions, cs.Bytes,
		counts.SupportChecks, counts.QueriesGenerated, res.Timings.HypoEval)

	// TAP. The analysis phases ran (possibly degraded); the last phase's
	// budget share is 1, so its deadline is exactly start+TimeBudget —
	// bit-for-bit the pre-governor semantics — and the anytime ladder
	// turns an expiry into a feasible heuristic solution, not a failure.
	t0 = time.Now()
	gov.StartPhase(governor.TAP)
	deadline := gov.Deadline(governor.TAP)
	inst := Instance(queries, cfg.Weights)
	res.TAP.Solver = cfg.Solver.String()
	tapSp := obs.StartSpan(ctx, "phase/tap")
	switch cfg.Solver {
	case SolverExact:
		any := tap.SolveAnytime(ctx, inst, float64(cfg.EpsT), cfg.EpsD, tap.ExactOptions{
			Timeout:  cfg.ExactTimeout,
			Deadline: deadline,
		})
		if any.Solver == tap.AnytimeCancelled {
			tapSp.End()
			reg.MarkInterrupted()
			return nil, ctx.Err()
		}
		res.Solution = any.Solution
		res.ExactStats = &any.Stats
		res.TAP = TAPOutcome{
			Solver:   any.Solver,
			Degraded: any.Degraded,
			Gap:      any.Gap,
			TimedOut: any.Stats.TimedOut,
		}
		if any.Degraded {
			cfg.logf("pipeline: TAP budget expired after %d nodes; degraded to %s (gap ≤ %.2f%%)",
				any.Stats.Nodes, any.Solver, 100*any.Gap)
		}
	case SolverTopK:
		res.Solution = tap.TopK(inst, float64(cfg.EpsT))
	case SolverHeuristicPlus:
		res.Solution = tap.GreedyPlus(inst, float64(cfg.EpsT), cfg.EpsD)
	default:
		res.Solution = tap.Greedy(inst, float64(cfg.EpsT), cfg.EpsD)
	}
	tapSp.End()
	res.Timings.TAP = time.Since(t0)
	res.Timings.Total = time.Since(start)
	reg.Timing("phase_tap").Observe(res.Timings.TAP)
	reg.Timing("run_total").Observe(res.Timings.Total)
	cfg.logf("pipeline: %s TAP selected %d queries (interest %.3f) in %v",
		res.TAP.Solver, len(res.Solution.Order), res.Solution.TotalInterest, res.Timings.TAP)

	// Degradation record, read back from the registry the phases reported
	// into — the counters are the single source; this struct is the
	// report-friendly view. A phase is listed only when a concession had
	// an observable effect, so generously budgeted runs report nothing.
	pairsShed := int(reg.Counter("stats_pairs_shed").Value())
	hypoDropped := int(reg.Counter("hypo_candidates_dropped").Value())
	memEv := int(reg.Counter("engine_cache_admit_evictions").Value() +
		reg.Counter("engine_cache_admit_refusals").Value())
	res.Degraded = Degradation{
		PermsEffective: int(reg.Gauge("stats_perms_effective_min").Value()),
		PairsSkipped:   pairsShed,
		HypoDropped:    hypoDropped,
		MemEvictions:   memEv,
	}
	if reg.Gauge("stats_earlystop_engaged").Value() != 0 || pairsShed > 0 {
		res.Degraded.Phases = append(res.Degraded.Phases, "stats")
	}
	if hypoDropped > 0 {
		res.Degraded.Phases = append(res.Degraded.Phases, "hypo")
	}
	if memEv > 0 {
		res.Degraded.Phases = append(res.Degraded.Phases, "engine")
	}
	if res.TAP.Degraded {
		res.Degraded.Phases = append(res.Degraded.Phases, "tap")
	}
	if res.Degraded.Any() {
		cfg.logf("pipeline: degraded phases %v (perms_effective=%d pairs_skipped=%d hypo_dropped=%d mem_evictions=%d)",
			res.Degraded.Phases, res.Degraded.PermsEffective, pairsShed, hypoDropped, memEv)
	}
	return res, nil
}

// Instance builds the TAP instance over a query set: §4.2's uniform costs
// and the weighted Hamming distance.
func Instance(queries []ScoredQuery, w metric.Weights) *tap.Instance {
	interest := make([]float64, len(queries))
	cost := make([]float64, len(queries))
	for i, q := range queries {
		interest[i] = q.Interest
		cost[i] = 1
	}
	return &tap.Instance{
		Interest: interest,
		Cost:     cost,
		Dist: func(i, j int) float64 {
			return metric.Distance(queries[i].Query, queries[j].Query, w)
		},
	}
}

// BuildNotebook renders the selected sequence as a comparison notebook:
// for each query a Markdown cell describing the insights it evidences and
// a SQL code cell (the Figure 2 form), introduced by a title and a summary
// cell.
func BuildNotebook(res *Result) *notebook.Notebook {
	rel := res.Relation
	nb := notebook.New("Comparison notebook — " + rel.Name())
	nb.AddMarkdown(fmt.Sprintf(
		"Auto-generated starting point for exploring `%s` (%d rows). "+
			"%d significant comparison insights were found; the %d queries below "+
			"were selected by the %s TAP solver (ε_t=%d, ε_d=%.2f).",
		rel.Name(), rel.NumRows(), len(res.Insights), len(res.Solution.Order),
		res.Config.Solver, res.Config.EpsT, res.Config.EpsD))
	for step, sq := range res.Sequence() {
		md := fmt.Sprintf("## Step %d — %s\n", step+1, sq.Query.Describe(rel))
		for _, ins := range sq.Supported {
			md += fmt.Sprintf("\n- %s", ins.Describe(rel))
		}
		md += fmt.Sprintf("\n\nInterestingness: %.4f", sq.Interest)
		nb.AddMarkdown(md)
		nb.AddCode(sqlgen.Comparison(rel, sqlgen.Params{
			GroupBy: sq.Query.GroupBy,
			SelAttr: sq.Query.Attr,
			Val:     sq.Query.Val,
			Val2:    sq.Query.Val2,
			Meas:    sq.Query.Meas,
			Agg:     sq.Query.Agg,
		}))
		// Like the paper's Figure 2, show the comparison result next to
		// the query (truncated for wide group-bys). The run's cube cache
		// answers this without rescanning the base relation.
		nb.AddMarkdown(res.resultTable(sq.Query, 15))
		if res.Config.IncludeHypotheses {
			for _, ins := range sq.Supported {
				nb.AddMarkdown(fmt.Sprintf("Hypothesis query (%s):", ins.Type))
				nb.AddCode(HypothesisSQL(rel, sq, ins))
			}
		}
	}
	return nb
}

// resultTable renders the comparison query's result from the run's cube
// cache: an exact or rolled-up pair cube answers it in O(groups); only a
// Result without a cache falls back to the two-scan plan.
func (r *Result) resultTable(q insight.Query, maxRows int) string {
	if r.cache == nil {
		return ResultTable(r.Relation, q, maxRows)
	}
	pc := r.cache.GetOrBuild(r.Relation, []int{q.GroupBy, q.Attr}, r.Config.threads())
	res := engine.CompareFromCube(pc, q.GroupBy, q.Attr, q.Val, q.Val2, q.Meas, q.Agg)
	return renderResultTable(r.Relation, q, res, maxRows)
}

// ResultTable executes the comparison query with the literal two-scan plan
// and renders its result as a Markdown table, keeping at most maxRows rows
// (0 = all).
func ResultTable(rel *table.Relation, q insight.Query, maxRows int) string {
	res := engine.CompareDirect(rel, q.GroupBy, q.Attr, q.Val, q.Val2, q.Meas, q.Agg)
	return renderResultTable(rel, q, res, maxRows)
}

func renderResultTable(rel *table.Relation, q insight.Query, res *engine.ComparisonResult, maxRows int) string {
	left := rel.Value(q.Attr, q.Val)
	right := rel.Value(q.Attr, q.Val2)
	var sb strings.Builder
	fmt.Fprintf(&sb, "| %s | %s | %s |\n|---|---|---|\n", rel.CatName(q.GroupBy), left, right)
	n := res.Len()
	truncated := false
	if maxRows > 0 && n > maxRows {
		n = maxRows
		truncated = true
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "| %s | %g | %g |\n",
			rel.Value(q.GroupBy, res.Groups[i]), res.Left[i], res.Right[i])
	}
	if truncated {
		fmt.Fprintf(&sb, "\n_%d more rows_", res.Len()-n)
	}
	return sb.String()
}

// ComparisonSQL renders a comparison query as the Figure-2 SQL text.
func ComparisonSQL(rel *table.Relation, q insight.Query) string {
	return sqlgen.Comparison(rel, sqlgen.Params{
		GroupBy: q.GroupBy,
		SelAttr: q.Attr,
		Val:     q.Val,
		Val2:    q.Val2,
		Meas:    q.Meas,
		Agg:     q.Agg,
	})
}

// HypothesisSQL renders the hypothesis query postulating the given insight
// for a scored query, for tooling and notebook appendices.
func HypothesisSQL(rel *table.Relation, sq ScoredQuery, ins insight.Insight) string {
	kind := sqlgen.MeanGreater
	switch ins.Type {
	case insight.VarianceGreater:
		kind = sqlgen.VarianceGreater
	case insight.MedianGreater:
		kind = sqlgen.MedianGreater
	}
	return sqlgen.Hypothesis(rel, sqlgen.Params{
		GroupBy: sq.Query.GroupBy,
		SelAttr: sq.Query.Attr,
		Val:     sq.Query.Val,
		Val2:    sq.Query.Val2,
		Meas:    sq.Query.Meas,
		Agg:     sq.Query.Agg,
	}, kind)
}
