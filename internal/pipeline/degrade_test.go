package pipeline

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"
	"time"

	"comparenb/internal/faultinject"
	"comparenb/internal/governor"
	"comparenb/internal/insight"
	"comparenb/internal/testutil"
)

// reportFields serialises the run report and parses it back, so tests can
// assert on the exact JSON schema a tool consumer would see.
func reportFields(t *testing.T, res *Result) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Report().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var js map[string]any
	if err := json.Unmarshal(buf.Bytes(), &js); err != nil {
		t.Fatal(err)
	}
	return js
}

func hasPhase(d Degradation, phase string) bool {
	for _, p := range d.Phases {
		if p == phase {
			return true
		}
	}
	return false
}

// TestForcedStatsDegradeDeterministicAcrossThreads pins the Degrade rung
// of the stats ladder and checks the contract the ladder was designed
// around: a degraded run is not byte-identical to a full run, but it IS
// byte-identical to itself at every thread count — the early-stopping
// kernel's truncation points are pure functions of the data, never of
// scheduling.
func TestForcedStatsDegradeDeterministicAcrossThreads(t *testing.T) {
	rel := goldenRelation()
	var refNB, refRep []byte
	for _, threads := range []int{1, 2, 8} {
		cfg := budgetConfig(threads)
		cfg.forceStatsLevel = governor.Degrade
		res, err := Generate(rel, cfg)
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if !hasPhase(res.Degraded, "stats") {
			t.Fatalf("threads=%d: forced Degrade not recorded: %+v", threads, res.Degraded)
		}
		if res.Degraded.PermsEffective <= 0 || res.Degraded.PermsEffective > cfg.Perms {
			t.Errorf("threads=%d: perms_effective = %d, want in (0, %d]",
				threads, res.Degraded.PermsEffective, cfg.Perms)
		}
		if res.Degraded.PairsSkipped != 0 {
			t.Errorf("threads=%d: Degrade skipped %d pairs; only Shed drops pairs", threads, res.Degraded.PairsSkipped)
		}
		nb, rep := renderMarkdown(t, res), reportJSON(t, res)
		if threads == 1 {
			refNB, refRep = nb, rep
			continue
		}
		if !bytes.Equal(nb, refNB) {
			t.Errorf("threads=%d: degraded notebook differs from serial degraded run", threads)
		}
		if !bytes.Equal(rep, refRep) {
			t.Errorf("threads=%d: degraded report differs from serial degraded run", threads)
		}
	}
}

// TestForcedStatsShedSkipsLowPriorityPairs pins the Shed rung: pairs past
// the top max(EpsT, 4) priority ranks are dropped without testing, the
// survivors run with block-aligned truncated permutations, and the whole
// concession is named in the report JSON.
func TestForcedStatsShedSkipsLowPriorityPairs(t *testing.T) {
	cfg := budgetConfig(2) // EpsT = 3 → minKeep = 4; golden relation has 5 pairs
	cfg.forceStatsLevel = governor.Shed
	res, err := Generate(goldenRelation(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded.PairsSkipped != 1 {
		t.Errorf("pairs skipped = %d, want exactly the 1 pair outside the top 4 ranks", res.Degraded.PairsSkipped)
	}
	shedCap := permsShedCap(cfg.Perms, cfg.Alpha)
	if res.Degraded.PermsEffective <= 0 || res.Degraded.PermsEffective > shedCap {
		t.Errorf("perms_effective = %d, want in (0, %d]", res.Degraded.PermsEffective, shedCap)
	}
	if nb := renderMarkdown(t, res); len(nb) == 0 {
		t.Error("shed run rendered an empty notebook")
	}
	js := reportFields(t, res)
	if js["pairs_skipped"] != float64(1) {
		t.Errorf("serialised pairs_skipped = %v, want 1", js["pairs_skipped"])
	}
	phases, _ := js["phase_degraded"].([]any)
	if len(phases) == 0 || phases[0] != "stats" {
		t.Errorf("serialised phase_degraded = %v, want [stats ...]", js["phase_degraded"])
	}

	// Same forced rung, different thread count: identical bytes.
	cfg2 := budgetConfig(7)
	cfg2.forceStatsLevel = governor.Shed
	res2, err := Generate(goldenRelation(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportJSON(t, res), reportJSON(t, res2)) {
		t.Error("shed run not deterministic across thread counts")
	}
}

// TestForcedHypoShedDropsCandidates pins the hypothesis phase's Shed
// rung: the candidate set is capped to the top max(EpsT, 4) insights by
// significance, and the drop count lands in the report.
func TestForcedHypoShedDropsCandidates(t *testing.T) {
	cfg := budgetConfig(2)
	cfg.InsightTypes = insight.ExtendedTypes // enough significants to exceed the cap
	cfg.forceHypoLevel = governor.Shed
	res, err := Generate(goldenRelation(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded.HypoDropped <= 0 {
		t.Fatalf("forced hypo Shed dropped nothing: %+v", res.Degraded)
	}
	if !hasPhase(res.Degraded, "hypo") {
		t.Errorf("phases = %v, want to include hypo", res.Degraded.Phases)
	}
	if hasPhase(res.Degraded, "stats") {
		t.Errorf("phases = %v: stats was not degraded", res.Degraded.Phases)
	}
	if len(res.Insights) > hypoCandidateCap(governor.Shed, cfg.EpsT) {
		t.Errorf("%d insights survived a cap of %d", len(res.Insights), hypoCandidateCap(governor.Shed, cfg.EpsT))
	}
	if len(res.Solution.Order) == 0 {
		t.Error("capped run selected no queries")
	}
	js := reportFields(t, res)
	if js["hypo_dropped"] != float64(res.Degraded.HypoDropped) {
		t.Errorf("serialised hypo_dropped = %v, want %d", js["hypo_dropped"], res.Degraded.HypoDropped)
	}
}

// TestWallClockExhaustionShedsEveryPhase burns the entire budget at the
// first governor rebalance with an injected sleep — a deterministic
// logical point, not a racy timer — so every later phase starts past its
// deadline: stats sheds pairs, TAP answers from a heuristic rung, and the
// run still returns a complete feasible notebook naming it all.
func TestWallClockExhaustionShedsEveryPhase(t *testing.T) {
	defer faultinject.Set(faultinject.GovernorRebalance,
		faultinject.OnCall(1, func() { time.Sleep(50 * time.Millisecond) }))()
	cfg := budgetConfig(2)
	cfg.TimeBudget = time.Millisecond
	before := runtime.NumGoroutine()
	res, err := Generate(goldenRelation(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !hasPhase(res.Degraded, "stats") {
		t.Errorf("phases = %v, want stats shed after budget exhaustion", res.Degraded.Phases)
	}
	if !res.TAP.Degraded || !hasPhase(res.Degraded, "tap") {
		t.Errorf("TAP did not degrade on an exhausted budget: %+v / %v", res.TAP, res.Degraded.Phases)
	}
	if res.Degraded.PairsSkipped == 0 {
		t.Error("exhausted budget shed no pairs")
	}
	inst := Instance(res.Queries, cfg.Weights)
	if err := inst.Feasible(res.Solution, float64(cfg.EpsT), cfg.EpsD); err != nil {
		t.Errorf("degraded solution infeasible: %v", err)
	}
	if nb := renderMarkdown(t, res); len(nb) == 0 {
		t.Error("exhausted-budget run rendered an empty notebook")
	}
	testutil.WaitGoroutinesSettle(t, before)
}

// TestMemBudgetDegradesEngineAndCompletes arms a cube-cache memory budget
// far below the run's working set: the run must complete — admission
// refuses caching, never answers — and the report must count the
// evictions/refusals under "engine".
func TestMemBudgetDegradesEngineAndCompletes(t *testing.T) {
	cfg := budgetConfig(1)
	cfg.MemBudget = 300 // roughly one pair cube of the golden relation
	res, err := Generate(goldenRelation(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !hasPhase(res.Degraded, "engine") {
		t.Fatalf("phases = %v, want engine under a 300-byte budget", res.Degraded.Phases)
	}
	if res.Degraded.MemEvictions == 0 {
		t.Error("no admission actions recorded under a 300-byte budget")
	}
	cs := res.CacheStats()
	if cs.Bytes > cfg.MemBudget {
		t.Errorf("cache holds %d B over the %d B budget", cs.Bytes, cfg.MemBudget)
	}
	// Admission degrades caching, never answers: the notebook must be
	// byte-identical to the unbudgeted run's.
	plain, err := Generate(goldenRelation(), budgetConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderMarkdown(t, res), renderMarkdown(t, plain)) {
		t.Error("mem budget changed notebook bytes; admission must only affect caching")
	}
	js := reportFields(t, res)
	if js["mem_evictions"] != float64(res.Degraded.MemEvictions) {
		t.Errorf("serialised mem_evictions = %v, want %d", js["mem_evictions"], res.Degraded.MemEvictions)
	}
	if cfgJS, ok := js["config"].(map[string]any); !ok || cfgJS["mem_budget"] != float64(300) {
		t.Errorf("serialised config.mem_budget = %v, want 300", js["config"])
	}
}
