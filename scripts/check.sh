#!/bin/sh
# Pre-merge gate for comparenb. Every step must pass; the script stops at
# the first failure. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> comparenb-vet ./..."
go run ./cmd/comparenb-vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> bench smoke (every benchmark once)"
go test -run '^$' -bench . -benchtime=1x ./... > /dev/null

echo "OK: all checks passed"
