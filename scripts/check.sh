#!/bin/sh
# Pre-merge gate for comparenb. Every step must pass; the script stops at
# the first failure. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> comparenb-vet ./..."
go run ./cmd/comparenb-vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> bench smoke (every benchmark once)"
go test -run '^$' -bench . -benchtime=1x ./... > /dev/null

echo "==> obs smoke (trace + metrics artifacts validate)"
OBSDIR="$(mktemp -d)"
SRV_PID=""
cleanup() {
    if [ -n "$SRV_PID" ] && kill -0 "$SRV_PID" 2>/dev/null; then
        kill -TERM "$SRV_PID" 2>/dev/null || true
        wait "$SRV_PID" 2>/dev/null || true
    fi
    rm -rf "$OBSDIR"
}
trap cleanup EXIT
go run ./cmd/datagen -dataset tiny > "$OBSDIR/tiny.csv"
go run ./cmd/comparenb -in "$OBSDIR/tiny.csv" -solver exact \
    -trace-out "$OBSDIR/run.trace.json" -metrics-out "$OBSDIR/run.metrics.txt" \
    > /dev/null
go run ./cmd/obscheck -q -trace "$OBSDIR/run.trace.json" -metrics "$OBSDIR/run.metrics.txt"

echo "==> server smoke (daemon -> load -> generate -> obscheck -> drain)"
go build -o "$OBSDIR/" ./cmd/comparenbd ./cmd/loadgen ./cmd/obscheck
"$OBSDIR/comparenbd" -addr 127.0.0.1:0 -addr-file "$OBSDIR/addr" \
    -load tiny="$OBSDIR/tiny.csv" > "$OBSDIR/daemon.log" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 50); do
    [ -s "$OBSDIR/addr" ] && break
    sleep 0.1
done
[ -s "$OBSDIR/addr" ] || { echo "server smoke: daemon never bound; log:" >&2; cat "$OBSDIR/daemon.log" >&2; exit 1; }
"$OBSDIR/loadgen" -addr "$(cat "$OBSDIR/addr")" -tenants 1 -jobs 2 -rows 200 -queries 4 -perms 60 \
    -trace-out "$OBSDIR/job.trace.json" -metrics-out "$OBSDIR/job.metrics.txt" \
    -jobtrace-out "$OBSDIR/job.flighttrace.json" -flight-out "$OBSDIR/flight.json" > /dev/null
"$OBSDIR/obscheck" -q -trace "$OBSDIR/job.trace.json" -metrics "$OBSDIR/job.metrics.txt"
# The flight recorder's snapshot and its per-job trace download must
# validate under the same rules as the pipeline's own artifacts.
"$OBSDIR/obscheck" -q -trace "$OBSDIR/job.flighttrace.json" -flight "$OBSDIR/flight.json"
kill -TERM "$SRV_PID"
wait "$SRV_PID"
SRV_PID=""

echo "==> crash smoke (durable daemon -> kill -9 mid-run -> restart -> recovery verified)"
wait_addr() {
    for _ in $(seq 1 50); do
        [ -s "$1" ] && return 0
        sleep 0.1
    done
    return 1
}
STATEDIR="$OBSDIR/state"
"$OBSDIR/comparenbd" -addr 127.0.0.1:0 -addr-file "$OBSDIR/addr-crash1" \
    -state-dir "$STATEDIR" > "$OBSDIR/crash1.log" 2>&1 &
SRV_PID=$!
wait_addr "$OBSDIR/addr-crash1" || { echo "crash smoke: daemon never bound; log:" >&2; cat "$OBSDIR/crash1.log" >&2; exit 1; }
# Slow-ish jobs so SIGKILL plausibly lands mid-run; recovery is verified
# either way — every journaled job must settle after the restart.
"$OBSDIR/loadgen" -addr "$(cat "$OBSDIR/addr-crash1")" -tenants 1 -jobs 3 \
    -rows 400 -queries 5 -perms 4000 > /dev/null 2>&1 &
LG_PID=$!
sleep 0.4
kill -9 "$SRV_PID"
SRV_PID=""
wait "$LG_PID" 2>/dev/null || true  # its daemon just vanished mid-poll
"$OBSDIR/comparenbd" -addr 127.0.0.1:0 -addr-file "$OBSDIR/addr-crash2" \
    -state-dir "$STATEDIR" > "$OBSDIR/crash2.log" 2>&1 &
SRV_PID=$!
wait_addr "$OBSDIR/addr-crash2" || { echo "crash smoke: restarted daemon never bound; log:" >&2; cat "$OBSDIR/crash2.log" >&2; exit 1; }
# -resume waits for /readyz, follows every journaled job to a terminal
# state, and fails if the journal was empty or anything never settles.
# -journal additionally asserts every recovered job kept the trace id
# its admission record carried across the kill -9.
"$OBSDIR/loadgen" -addr "$(cat "$OBSDIR/addr-crash2")" -resume \
    -journal "$STATEDIR/journal.jsonl" -out "$OBSDIR/resume.json" \
    || { echo "crash smoke: recovery verification failed; log:" >&2; cat "$OBSDIR/crash2.log" >&2; exit 1; }
cat "$OBSDIR/resume.json"
kill -TERM "$SRV_PID"
wait "$SRV_PID"
SRV_PID=""

echo "==> fuzz smoke (every fuzz target, 3s each)"
# go test accepts one -fuzz target per invocation, so enumerate the
# targets per package and run each briefly against its seed corpus.
for pkg in ./internal/stats ./internal/tap ./internal/table; do
    targets=$(go test -list '^Fuzz' "$pkg" | grep '^Fuzz' || true)
    if [ -z "$targets" ]; then
        echo "fuzz smoke: no fuzz targets found in $pkg" >&2
        exit 1
    fi
    for fz in $targets; do
        echo "    $pkg $fz"
        go test -run '^$' -fuzz "^${fz}\$" -fuzztime 3s "$pkg" > /dev/null
    done
done

echo "OK: all checks passed"
