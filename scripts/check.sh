#!/bin/sh
# Pre-merge gate for comparenb. Every step must pass; the script stops at
# the first failure. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> comparenb-vet ./..."
go run ./cmd/comparenb-vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> bench smoke (every benchmark once)"
go test -run '^$' -bench . -benchtime=1x ./... > /dev/null

echo "==> obs smoke (trace + metrics artifacts validate)"
OBSDIR="$(mktemp -d)"
trap 'rm -rf "$OBSDIR"' EXIT
go run ./cmd/datagen -dataset tiny > "$OBSDIR/tiny.csv"
go run ./cmd/comparenb -in "$OBSDIR/tiny.csv" -solver exact \
    -trace-out "$OBSDIR/run.trace.json" -metrics-out "$OBSDIR/run.metrics.txt" \
    > /dev/null
go run ./cmd/obscheck -q -trace "$OBSDIR/run.trace.json" -metrics "$OBSDIR/run.metrics.txt"

echo "==> fuzz smoke (every fuzz target, 3s each)"
# go test accepts one -fuzz target per invocation, so enumerate the
# targets per package and run each briefly against its seed corpus.
for pkg in ./internal/stats ./internal/tap ./internal/table; do
    targets=$(go test -list '^Fuzz' "$pkg" | grep '^Fuzz' || true)
    if [ -z "$targets" ]; then
        echo "fuzz smoke: no fuzz targets found in $pkg" >&2
        exit 1
    fi
    for fz in $targets; do
        echo "    $pkg $fz"
        go test -run '^$' -fuzz "^${fz}\$" -fuzztime 3s "$pkg" > /dev/null
    done
done

echo "OK: all checks passed"
