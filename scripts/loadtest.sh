#!/bin/sh
# Load test for the notebook-generation daemon: starts comparenbd on an
# ephemeral port, drives it with cmd/loadgen (concurrent tenants, shared
# cube cache), validates the server-emitted trace/metrics artifacts with
# obscheck, and writes latency percentiles + shed rate as JSON.
#
#   scripts/loadtest.sh [out.json]
#
# The default output path is BENCH_PR10.json in the repo root (the
# committed reference numbers for this harness).
set -eu

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_PR10.json}"

WORK="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -TERM "$DAEMON_PID" 2>/dev/null || true
        wait "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "==> build comparenbd + loadgen"
go build -o "$WORK/" ./cmd/comparenbd ./cmd/loadgen ./cmd/obscheck

echo "==> start daemon (ephemeral port, 2 workers)"
"$WORK/comparenbd" -addr 127.0.0.1:0 -addr-file "$WORK/addr" \
    -max-concurrent 2 -queue-depth 32 \
    > "$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!

# Wait for the listen address to appear.
for _ in $(seq 1 50); do
    [ -s "$WORK/addr" ] && break
    sleep 0.1
done
[ -s "$WORK/addr" ] || { echo "daemon never bound; log:" >&2; cat "$WORK/daemon.log" >&2; exit 1; }
ADDR="$(cat "$WORK/addr")"
echo "    daemon at $ADDR"

echo "==> drive load (3 tenants x 6 jobs)"
"$WORK/loadgen" -addr "$ADDR" -tenants 3 -jobs 6 -rows 400 -queries 5 -perms 100 \
    -out "$OUT" -trace-out "$WORK/job.trace.json" -metrics-out "$WORK/job.metrics.txt" \
    -jobtrace-out "$WORK/job.flighttrace.json" -flight-out "$WORK/flight.json"

echo "==> obscheck server-emitted artifacts"
"$WORK/obscheck" -q -trace "$WORK/job.trace.json" -metrics "$WORK/job.metrics.txt"
"$WORK/obscheck" -q -trace "$WORK/job.flighttrace.json" -flight "$WORK/flight.json"

echo "==> graceful shutdown"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
DAEMON_PID=""

echo "OK: results in $OUT"
