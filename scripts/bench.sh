#!/bin/sh
# Benchmark harness for comparenb. Runs every benchmark (table/figure
# reproductions, the kernel microbenchmarks and the observability-overhead
# probes) with -benchmem at the fixed seeds baked into the _test.go files,
# and writes the machine-readable baseline BENCH_PR7.json: one record per
# benchmark plus derived speedups — the sharded cube build versus the
# naive reference builder, and the parallel kernels versus their
# threads=1 runs.
#
# When a previous baseline exists (PREV, default BENCH_PR5.json), the
# output also carries per-benchmark B/op deltas against it, and any
# cube-build benchmark whose B/op regressed by more than 20% gets a loud
# WARNING on stderr — allocation discipline in the build kernels is a
# tracked budget, not a nice-to-have.
#
#   scripts/bench.sh                    # full run (default -benchtime=1s)
#   BENCHTIME=100ms scripts/bench.sh    # quicker, noisier
#   OUT=/tmp/b.json scripts/bench.sh    # write elsewhere
#   PREV=BENCH_PR2.json scripts/bench.sh  # diff against another baseline
#   PREV=none scripts/bench.sh          # skip the delta section
#
# Stdlib toolchain only: go test + awk.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
OUT="${OUT:-BENCH_PR7.json}"
PREV="${PREV:-BENCH_PR5.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

if [ "$PREV" = "none" ] || [ ! -f "$PREV" ]; then
    PREV=/dev/null
fi

echo "==> go test -run '^\$' -bench . -benchmem -benchtime=$BENCHTIME ./..."
go test -run '^$' -bench . -benchmem -benchtime="$BENCHTIME" ./... | tee "$RAW"

echo "==> writing $OUT (B/op deltas vs $PREV)"
awk '
FNR == NR {
    # First input: the previous baseline JSON. One benchmark record per
    # line; pull out the name and its B/op figure when present.
    if (match($0, /"name": "Benchmark[^"]*"/)) {
        pname = substr($0, RSTART + 9, RLENGTH - 10)
        if (match($0, /"b_op": [0-9]+/))
            prev_bop[pname] = substr($0, RSTART + 8, RLENGTH - 8) + 0
    }
    next
}
/^Benchmark/ {
    # Benchmark lines: Name-GOMAXPROCS  N  ns/op  [B/op  allocs/op]
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[name] = $3
    bop[name] = ""; aop[name] = ""
    for (i = 4; i < NF; i++) {
        if ($(i + 1) == "B/op") bop[name] = $i
        if ($(i + 1) == "allocs/op") aop[name] = $i
    }
    order[n_bench++] = name
}
END {
    printf "{\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", benchtime
    for (i = 0; i < n_bench; i++) {
        name = order[i]
        printf "    {\"name\": \"%s\", \"ns_op\": %s", name, ns[name]
        if (bop[name] != "") printf ", \"b_op\": %s, \"allocs_op\": %s", bop[name], aop[name]
        printf "}%s\n", (i < n_bench - 1 ? "," : "")
    }
    printf "  ],\n  \"speedups\": [\n"
    n_sp = 0
    # Sharded kernel vs the naive reference builder (same seed, same attrs).
    if (("BenchmarkBuildCubeReference" in ns) && ("BenchmarkBuildCube2Attrs" in ns)) {
        sp_name[n_sp] = "BuildCube2Attrs_vs_naive_reference"
        sp_val[n_sp] = ns["BenchmarkBuildCubeReference"] / ns["BenchmarkBuildCube2Attrs"]
        n_sp++
    }
    # Parallel kernels vs their own threads=1 runs (bit-identical output).
    for (i = 0; i < n_bench; i++) {
        name = order[i]
        if (name !~ /threads=[0-9]+$/ || name ~ /threads=1$/) continue
        base = name
        sub(/threads=[0-9]+$/, "threads=1", base)
        if (base in ns) {
            sp_name[n_sp] = substr(name, 10) "_vs_threads=1"
            sp_val[n_sp] = ns[base] / ns[name]
            n_sp++
        }
    }
    for (i = 0; i < n_sp; i++)
        printf "    {\"name\": \"%s\", \"speedup\": %.3f}%s\n", sp_name[i], sp_val[i], (i < n_sp - 1 ? "," : "")
    printf "  ]"
    # B/op deltas against the previous baseline: ratio < 1 means this run
    # allocates less per op than the baseline did.
    n_d = 0
    for (i = 0; i < n_bench; i++) {
        name = order[i]
        if (bop[name] == "" || !(name in prev_bop) || prev_bop[name] == 0) continue
        d_name[n_d] = name; n_d++
    }
    if (n_d > 0) {
        printf ",\n  \"b_op_deltas\": [\n"
        for (i = 0; i < n_d; i++) {
            name = d_name[i]
            ratio = bop[name] / prev_bop[name]
            printf "    {\"name\": \"%s\", \"prev_b_op\": %.0f, \"b_op\": %s, \"ratio\": %.3f}%s\n", \
                name, prev_bop[name], bop[name], ratio, (i < n_d - 1 ? "," : "")
            if (name ~ /BuildCube/ && ratio > 1.2) {
                printf "WARNING: %s B/op regressed %.1f%% vs baseline (%.0f -> %s B/op)\n", \
                    name, (ratio - 1) * 100, prev_bop[name], bop[name] | "cat 1>&2"
                warned = 1
            }
        }
        printf "  ]"
        if (warned) {
            printf "==================== B/op REGRESSION ====================\n" | "cat 1>&2"
            printf "Cube-build benchmarks above regressed >20%% in bytes/op.\n" | "cat 1>&2"
            printf "The encoded kernels budget allocations deliberately --\n" | "cat 1>&2"
            printf "see docs/PERFORMANCE.md before accepting a new baseline.\n" | "cat 1>&2"
            printf "=========================================================\n" | "cat 1>&2"
        }
    }
    printf "\n}\n"
}
' benchtime="$BENCHTIME" "$PREV" "$RAW" > "$OUT"

echo "OK: wrote $OUT"
