#!/bin/sh
# Benchmark harness for comparenb. Runs every benchmark (table/figure
# reproductions, the kernel microbenchmarks and the observability-overhead
# probes) with -benchmem at the fixed seeds baked into the _test.go files,
# and writes the machine-readable baseline BENCH_PR5.json: one record per
# benchmark plus derived speedups — the sharded cube build versus the
# naive reference builder, and the parallel kernels versus their
# threads=1 runs.
#
#   scripts/bench.sh              # full run (default -benchtime=1s)
#   BENCHTIME=100ms scripts/bench.sh   # quicker, noisier
#   OUT=/tmp/b.json scripts/bench.sh   # write elsewhere
#
# Stdlib toolchain only: go test + awk.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
OUT="${OUT:-BENCH_PR5.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "==> go test -run '^\$' -bench . -benchmem -benchtime=$BENCHTIME ./..."
go test -run '^$' -bench . -benchmem -benchtime="$BENCHTIME" ./... | tee "$RAW"

echo "==> writing $OUT"
awk '
/^Benchmark/ {
    # Benchmark lines: Name-GOMAXPROCS  N  ns/op  [B/op  allocs/op]
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[name] = $3
    bop[name] = ""; aop[name] = ""
    for (i = 4; i < NF; i++) {
        if ($(i + 1) == "B/op") bop[name] = $i
        if ($(i + 1) == "allocs/op") aop[name] = $i
    }
    order[n_bench++] = name
}
END {
    printf "{\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", benchtime
    for (i = 0; i < n_bench; i++) {
        name = order[i]
        printf "    {\"name\": \"%s\", \"ns_op\": %s", name, ns[name]
        if (bop[name] != "") printf ", \"b_op\": %s, \"allocs_op\": %s", bop[name], aop[name]
        printf "}%s\n", (i < n_bench - 1 ? "," : "")
    }
    printf "  ],\n  \"speedups\": [\n"
    n_sp = 0
    # Sharded kernel vs the naive reference builder (same seed, same attrs).
    if (("BenchmarkBuildCubeReference" in ns) && ("BenchmarkBuildCube2Attrs" in ns)) {
        sp_name[n_sp] = "BuildCube2Attrs_vs_naive_reference"
        sp_val[n_sp] = ns["BenchmarkBuildCubeReference"] / ns["BenchmarkBuildCube2Attrs"]
        n_sp++
    }
    # Parallel kernels vs their own threads=1 runs (bit-identical output).
    for (i = 0; i < n_bench; i++) {
        name = order[i]
        if (name !~ /threads=[0-9]+$/ || name ~ /threads=1$/) continue
        base = name
        sub(/threads=[0-9]+$/, "threads=1", base)
        if (base in ns) {
            sp_name[n_sp] = substr(name, 10) "_vs_threads=1"
            sp_val[n_sp] = ns[base] / ns[name]
            n_sp++
        }
    }
    for (i = 0; i < n_sp; i++)
        printf "    {\"name\": \"%s\", \"speedup\": %.3f}%s\n", sp_name[i], sp_val[i], (i < n_sp - 1 ? "," : "")
    printf "  ]\n}\n"
}
' benchtime="$BENCHTIME" "$RAW" > "$OUT"

echo "OK: wrote $OUT"
