#!/bin/sh
# Long-run fuzzing for comparenb. Runs every native fuzz target for a
# configurable stretch (default 5 minutes each) — the soak counterpart to
# check.sh's 3-second smoke pass.
#
# Usage:
#   scripts/fuzz.sh            # 5 minutes per target
#   scripts/fuzz.sh 30         # 30 minutes per target
#   FUZZ_MINUTES=10 scripts/fuzz.sh
#
# When a target fails, `go test` writes the crashing input to the
# package's testdata/fuzz/<FuzzTarget>/ directory. Commit that file: it
# becomes a permanent regression seed that every future `go test` run
# (including check.sh's smoke pass) replays without any -fuzz flag.
set -eu

cd "$(dirname "$0")/.."

minutes="${1:-${FUZZ_MINUTES:-5}}"
case "$minutes" in
    ''|*[!0-9]*)
        echo "fuzz.sh: minutes must be a positive integer, got '$minutes'" >&2
        exit 2
        ;;
esac

packages="./internal/stats ./internal/tap ./internal/table"

echo "==> long-run fuzz: ${minutes}m per target"
failed=0
for pkg in $packages; do
    targets=$(go test -list '^Fuzz' "$pkg" | grep '^Fuzz' || true)
    if [ -z "$targets" ]; then
        echo "fuzz.sh: no fuzz targets found in $pkg" >&2
        exit 1
    fi
    for fz in $targets; do
        echo "==> $pkg $fz (${minutes}m)"
        if ! go test -run '^$' -fuzz "^${fz}\$" -fuzztime "${minutes}m" "$pkg"; then
            failed=1
            echo "fuzz.sh: $fz FAILED — commit the new seed under ${pkg}/testdata/fuzz/${fz}/ once the bug is fixed" >&2
        fi
    done
done

if [ "$failed" -ne 0 ]; then
    echo "fuzz.sh: at least one target found a crasher" >&2
    exit 1
fi
echo "OK: all fuzz targets survived ${minutes}m each"
