package comparenb_test

import (
	"fmt"
	"log"
	"strings"

	"comparenb"
)

// ExampleGenerateNotebook builds a small dataset in memory and generates a
// two-query comparison notebook.
func ExampleGenerateNotebook() {
	b := comparenb.NewBuilder("shop", []string{"region", "product", "channel"}, []string{"sales"})
	for i := 0; i < 900; i++ {
		region := []string{"north", "south", "east"}[i%3]
		product := []string{"widget", "gadget"}[i%2]
		channel := []string{"web", "store", "phone"}[i%3]
		sales := 100.0 + float64(i%3)*40 + float64(i%2)*15 + float64(i%11)
		b.AddRow([]string{region, product, channel}, []float64{sales})
	}
	ds := comparenb.FromRelation(b.Build())

	cfg := comparenb.NewConfig()
	cfg.EpsT = 2
	cfg.Perms = 200
	cfg.Seed = 1
	cfg.Threads = 1

	nb, res, err := comparenb.GenerateNotebook(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("found insights:", res.Counts.SignificantInsights > 0)
	fmt.Println("notebook queries:", nb.NumQueries())
	// Output:
	// found insights: true
	// notebook queries: 2
}

// ExampleReadCSV loads a CSV with explicit type hints and prints the
// inferred schema.
func ExampleReadCSV() {
	csv := `city,year,rainfall
Tours,2020,642
Tours,2021,580
Blois,2020,712
Blois,2021,695
`
	ds, err := comparenb.ReadCSV(strings.NewReader(csv), comparenb.CSVOptions{
		Name:             "weather",
		ForceCategorical: []string{"year"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("categorical:", ds.Report.Categorical)
	fmt.Println("numeric:", ds.Report.Numeric)
	// Output:
	// categorical: [city year]
	// numeric: [rainfall]
}

// ExampleComparisonSQL renders a comparison query as the SQL the paper's
// Figure 2 shows.
func ExampleComparisonSQL() {
	b := comparenb.NewBuilder("covid", []string{"continent", "month"}, []string{"cases"})
	b.AddRow([]string{"Africa", "4"}, []float64{31598})
	b.AddRow([]string{"Africa", "5"}, []float64{92626})
	ds := comparenb.FromRelation(b.Build())
	v4, _ := ds.Rel.CodeOf(1, "4")
	v5, _ := ds.Rel.CodeOf(1, "5")
	q := comparenb.Query{GroupBy: 0, Attr: 1, Val: v4, Val2: v5, Meas: 0, Agg: comparenb.Sum}
	fmt.Println(comparenb.ComparisonSQL(ds.Rel, q))
	// Output:
	// select t1.continent, v_4, v_5
	// from
	//   (select month, continent, sum(cases) as v_4
	//    from covid where month = '4' group by month, continent) t1,
	//   (select month, continent, sum(cases) as v_5
	//    from covid where month = '5' group by month, continent) t2
	// where t1.continent = t2.continent
	// order by t1.continent;
}
