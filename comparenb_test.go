package comparenb

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// covidCSV mirrors the paper's Figure 2 running example.
const covidCSV = `continent,month,cases
Africa,4,31598
Africa,5,92626
America,4,1104862
America,5,1404912
Asia,4,333821
Asia,5,537584
Europe,4,863874
Europe,5,608110
Oceania,4,2812
Oceania,5,467
`

func loadBigger(t *testing.T) *Dataset {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("region,product,sales\n")
	regions := []string{"north", "south", "east", "west"}
	products := []string{"widget", "gadget", "gizmo"}
	for i := 0; i < 600; i++ {
		r := regions[i%4]
		p := products[i%3]
		v := 100 + (i%4)*40 + (i%3)*5 + i%7
		sb.WriteString(r + "," + p + ",")
		sb.WriteString(strings.TrimSpace(itoa(v)))
		sb.WriteString("\n")
	}
	ds, err := ReadCSV(strings.NewReader(sb.String()), CSVOptions{Name: "sales"})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestReadCSVAndSchema(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader(covidCSV), CSVOptions{
		Name: "covid", ForceCategorical: []string{"month"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Rel.NumCatAttrs() != 2 || ds.Rel.NumMeasures() != 1 {
		t.Errorf("schema = %d cats, %d meas", ds.Rel.NumCatAttrs(), ds.Rel.NumMeasures())
	}
	if ds.Report == nil || len(ds.Report.Categorical) != 2 {
		t.Errorf("report = %+v", ds.Report)
	}
}

func TestGenerateNotebookEndToEnd(t *testing.T) {
	ds := loadBigger(t)
	cfg := NewConfig()
	cfg.Perms = 200
	cfg.Seed = 5
	cfg.EpsT = 4
	cfg.Threads = 2
	nb, res, err := GenerateNotebook(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.SignificantInsights == 0 {
		t.Fatal("no insights on a strongly structured dataset")
	}
	if nb.NumQueries() == 0 {
		t.Fatal("empty notebook")
	}
	var buf bytes.Buffer
	if err := nb.WriteIPYNB(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"cell_type\"") {
		t.Error("ipynb output malformed")
	}
}

func TestGenerateNilDataset(t *testing.T) {
	if _, err := Generate(nil, NewConfig()); err == nil {
		t.Error("nil dataset: want error")
	}
	if _, err := Generate(&Dataset{}, NewConfig()); err == nil {
		t.Error("nil relation: want error")
	}
}

func TestComparisonAndHypothesisSQL(t *testing.T) {
	ds := loadBigger(t)
	cfg := NewConfig()
	cfg.Perms = 200
	cfg.Seed = 5
	cfg.EpsT = 3
	cfg.Threads = 2
	res, err := Generate(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) == 0 {
		t.Fatal("no queries")
	}
	sq := res.Queries[0]
	sql := ComparisonSQL(ds.Rel, sq.Query)
	if !strings.Contains(sql, "select t1.") || !strings.HasSuffix(sql, ";") {
		t.Errorf("comparison SQL malformed:\n%s", sql)
	}
	hyp := HypothesisSQL(ds.Rel, sq, sq.Supported[0])
	if !strings.Contains(hyp, "hypothesis") {
		t.Errorf("hypothesis SQL malformed:\n%s", hyp)
	}
}

func TestPresetsExported(t *testing.T) {
	if NaiveExact(10, 1).Solver != SolverExact {
		t.Error("NaiveExact preset wrong")
	}
	if WSCUnbApprox(10, 1, 0.2).Sampling != SamplingUnbalanced {
		t.Error("WSCUnbApprox preset wrong")
	}
	if got := WSCRandApprox(10, 1, 0.4).SampleFrac; got != 0.4 {
		t.Errorf("WSCRandApprox frac = %v", got)
	}
}

func TestFromRelation(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader(covidCSV), CSVOptions{ForceCategorical: []string{"month"}})
	if err != nil {
		t.Fatal(err)
	}
	wrapped := FromRelation(ds.Rel)
	if wrapped.Rel != ds.Rel || wrapped.Report != nil {
		t.Error("FromRelation wrapping wrong")
	}
}

func TestProfileDataset(t *testing.T) {
	ds := loadBigger(t)
	p := ProfileDataset(ds)
	if p.Rows != 600 || len(p.Attrs) != 2 || len(p.Measures) != 1 {
		t.Errorf("profile shape: rows=%d attrs=%d meas=%d", p.Rows, len(p.Attrs), len(p.Measures))
	}
	if !strings.Contains(p.String(), "Profile of sales") {
		t.Error("profile render wrong")
	}
}

func TestExtendedTypesExported(t *testing.T) {
	if len(DefaultInsightTypes) != 2 || len(ExtendedInsightTypes) != 3 {
		t.Errorf("type sets: %d / %d", len(DefaultInsightTypes), len(ExtendedInsightTypes))
	}
	if ExtendedInsightTypes[2] != MedianGreater {
		t.Error("median type missing from extended set")
	}
}

func TestLoadCSVFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.csv")
	if err := os.WriteFile(path, []byte(covidCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := LoadCSV(path, CSVOptions{ForceCategorical: []string{"month"}})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Rel.NumRows() != 10 {
		t.Errorf("rows = %d", ds.Rel.NumRows())
	}
	if _, err := LoadCSV(filepath.Join(dir, "absent.csv"), CSVOptions{}); err == nil {
		t.Error("missing file: want error")
	}
}

func TestSolverHeuristicPlusEndToEnd(t *testing.T) {
	ds := loadBigger(t)
	cfg := NewConfig()
	cfg.Perms = 200
	cfg.Seed = 5
	cfg.EpsT = 3
	cfg.Solver = SolverHeuristicPlus
	cfg.AutoConciseness = true
	res, err := Generate(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solution.Order) == 0 {
		t.Error("2-opt solver produced empty notebook")
	}
	rep := res.Report()
	if rep.Config.Solver != "heuristic+2opt" {
		t.Errorf("report solver = %q", rep.Config.Solver)
	}
}

func TestGenerateContextCancellation(t *testing.T) {
	ds := loadBigger(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GenerateContext(ctx, ds, NewConfig()); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, _, err := GenerateNotebookContext(ctx, ds, NewConfig()); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled ctx (notebook): err = %v, want context.Canceled", err)
	}
}

func TestGenerateTimeBudgetDegradation(t *testing.T) {
	ds := loadBigger(t)
	cfg := NewConfig()
	cfg.Perms = 200
	cfg.Seed = 5
	cfg.EpsT = 4
	cfg.Solver = SolverExact
	cfg.TimeBudget = time.Nanosecond
	nb, res, err := GenerateNotebookContext(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var outcome TAPOutcome = res.TAP
	if !outcome.Degraded || outcome.Solver == "" {
		t.Errorf("nanosecond budget: outcome = %+v, want a named degraded rung", outcome)
	}
	if nb.NumQueries() == 0 {
		t.Error("degraded run produced an empty notebook")
	}
}
